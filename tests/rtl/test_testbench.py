"""Tests for self-checking testbench generation."""

import re

from repro.poly import parse_system
from repro.rings import BitVectorSignature
from repro.rtl import generate_vectors
from repro.rtl import testbench_for_system as make_testbench

SIG = BitVectorSignature.uniform(("x", "y"), 8)
SYSTEM = parse_system(["x^2 + y", "x*y + 3"])


class TestVectors:
    def test_deterministic(self):
        assert generate_vectors(SIG, 5) == generate_vectors(SIG, 5)

    def test_range_respected(self):
        for env in generate_vectors(SIG, 50):
            for var, value in env.items():
                assert 0 <= value < (1 << SIG.width_of(var))

    def test_seed_changes_vectors(self):
        assert generate_vectors(SIG, 5, seed=1) != generate_vectors(SIG, 5, seed=2)


class TestTestbench:
    def test_structure(self):
        text = make_testbench(SYSTEM, SIG, "dp", vectors=4)
        assert text.startswith("`timescale")
        assert "module dp_tb;" in text
        assert "dp dut(" in text
        assert text.count("#1;") == 4
        assert "$finish" in text

    def test_expected_values_match_polynomials(self):
        text = make_testbench(SYSTEM, SIG, vectors=6, seed=7)
        vectors = generate_vectors(SIG, 6, seed=7)
        # every expected constant in the tb equals the polynomial value
        checks = re.findall(r"p(\d+) !== 8'd(\d+)", text)
        assert len(checks) == 6 * 2
        cursor = 0
        for env in vectors:
            for out_index, poly in enumerate(SYSTEM):
                index, value = checks[cursor]
                cursor += 1
                assert int(index) == out_index
                assert int(value) == poly.evaluate_mod(env, 256)

    def test_pass_fail_messages(self):
        text = make_testbench(SYSTEM, SIG, vectors=2)
        assert "PASS: all vectors matched" in text
        assert "FAIL" in text
