"""Tests for the Verilog emitter."""

import re

import pytest

from repro.expr import Decomposition, make_add, make_mul, make_pow
from repro.expr.ast import BlockRef
from repro.rings import BitVectorSignature
from repro.rtl import decomposition_to_verilog
from repro.rtl.verilog import _sanitize

SIG = BitVectorSignature.uniform(("x", "y"), 16)


def emit(*outputs, blocks=None, name="datapath"):
    d = Decomposition()
    for block, expr in (blocks or {}).items():
        d.blocks[block] = expr
    d.outputs = list(outputs)
    return decomposition_to_verilog(d, SIG, name)


class TestStructure:
    def test_module_skeleton(self):
        text = emit(make_mul("x", "y"), name="mac")
        assert text.startswith("module mac(")
        assert text.rstrip().endswith("endmodule")
        assert "input  [15:0] x;" in text
        assert "output [15:0] p0;" in text

    def test_operators_emitted(self):
        text = emit(make_add("x", make_mul(-1, "y")))
        assert re.search(r"assign n\d+ = x - y;", text)

    def test_constant_multiplication(self):
        text = emit(make_mul(13, "x"))
        assert "* 16'd13" in text

    def test_negative_constant_becomes_subtraction(self):
        text = emit(make_add("x", -5))
        # x + (-5) lowers to a subtractor of the positive constant
        assert re.search(r"assign n\d+ = x - 16'd5;", text)

    def test_block_shared_as_single_wire(self):
        blocks = {"d": make_add("x", "y")}
        text = emit(
            make_pow(BlockRef("d"), 2),
            make_mul(3, BlockRef("d")),
            blocks=blocks,
        )
        # exactly one adder for the block
        assert len(re.findall(r"= x \+ y;", text)) == 1

    def test_deterministic(self):
        a = emit(make_mul("x", "y"), make_add("x", 1))
        b = emit(make_mul("x", "y"), make_add("x", 1))
        assert a == b


class TestSanitize:
    def test_plain_name(self):
        assert _sanitize("x") == "x"

    def test_special_characters(self):
        assert _sanitize("_b1") == "_b1"
        assert _sanitize("a.b") == "a_b"

    def test_leading_digit(self):
        assert _sanitize("1x") == "v_1x"

    def test_collision_detected(self):
        d = Decomposition()
        d.outputs = [make_add("a.b", "a_b")]
        with pytest.raises(ValueError, match="collide"):
            decomposition_to_verilog(
                d, BitVectorSignature.uniform(("a.b", "a_b"), 8)
            )


class TestSemantics:
    def test_assignment_order_is_topological(self):
        # every wire is assigned after the wires it reads
        text = emit(make_mul(make_add("x", 1), make_add("y", 2)))
        assigned: set[str] = {"x", "y"}
        for line in text.splitlines():
            match = re.match(r"\s*assign (n\d+) = (.*);", line)
            if not match:
                continue
            target, expression = match.groups()
            for used in re.findall(r"\bn\d+\b", expression):
                assert used in assigned, f"{used} read before assignment"
            assigned.add(target)
