"""Tests for the span/metrics exporters and the Chrome-trace validator."""

import json

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    chrome_trace_depth,
    event_names,
    prometheus_text,
    spans_to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


def sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("poly_synth", objective="area") as root:
        root.count(combinations=5)
        with tracer.span("cce"):
            with tracer.span("cce/gcd_pass"):
                pass
        with tracer.span("search"):
            pass
    return tracer


class TestChromeTrace:
    def test_schema_valid(self):
        document = chrome_trace(sample_tracer())
        assert validate_chrome_trace(document) == []
        assert document["displayTimeUnit"] == "ms"

    def test_events_and_depth(self):
        document = chrome_trace(sample_tracer())
        assert event_names(document) == [
            "poly_synth", "cce", "cce/gcd_pass", "search",
        ]
        assert chrome_trace_depth(document) == 3

    def test_categories_and_args(self):
        document = chrome_trace(sample_tracer())
        by_name = {e["name"]: e for e in document["traceEvents"]}
        assert by_name["cce/gcd_pass"]["cat"] == "cce"
        assert by_name["poly_synth"]["args"] == {
            "objective": "area", "combinations": 5,
        }

    def test_write_round_trips_json(self, tmp_path):
        path = tmp_path / "trace.json"
        events = write_chrome_trace(str(path), sample_tracer())
        assert events == 4
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document) == []

    def test_validator_rejects_garbage(self):
        assert validate_chrome_trace(42)
        assert validate_chrome_trace({"nope": []})
        assert validate_chrome_trace(
            {"traceEvents": [{"name": "x", "ph": "X", "ts": -1, "dur": 0}]}
        )
        assert validate_chrome_trace(
            {"traceEvents": [{"name": "", "ph": "X", "ts": 0, "dur": 0}]}
        )
        assert validate_chrome_trace(
            {"traceEvents": [{"name": "x", "ph": "??", "ts": 0}]}
        )

    def test_validator_accepts_array_format(self):
        assert validate_chrome_trace([{"name": "x", "ph": "X", "ts": 0, "dur": 1}]) == []


class TestJsonl:
    def test_lines_parse_and_carry_paths(self, tmp_path):
        lines = list(spans_to_jsonl(sample_tracer()))
        records = [json.loads(line) for line in lines]
        assert [r["path"] for r in records] == [
            "poly_synth",
            "poly_synth/cce",
            "poly_synth/cce/cce/gcd_pass",
            "poly_synth/search",
        ]
        assert records[0]["parent"] is None
        assert records[1]["parent"] == "poly_synth"
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(str(path), sample_tracer()) == 4


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("repro_cache_misses_total").inc(3)
        registry.gauge("repro_pool_utilization").set(0.5)
        text = prometheus_text(registry)
        assert "# TYPE repro_cache_misses_total counter" in text
        assert "repro_cache_misses_total 3" in text
        assert "repro_pool_utilization 0.5" in text
        assert text.endswith("\n")

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_phase_seconds", buckets=(0.1, 1.0), phase="cce"
        )
        histogram.observe(0.05)
        histogram.observe(5.0)
        text = prometheus_text(registry)
        assert 'repro_phase_seconds_bucket{phase="cce",le="0.1"} 1' in text
        assert 'repro_phase_seconds_bucket{phase="cce",le="+Inf"} 2' in text
        assert 'repro_phase_seconds_count{phase="cce"} 2' in text

    def test_empty_registry_is_empty_string(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c", quote='he said "hi"\n').inc()
        text = prometheus_text(registry)
        assert r'quote="he said \"hi\"\n"' in text
