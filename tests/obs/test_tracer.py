"""Tests for the hierarchical span tracer (repro.obs.tracer)."""

import threading

import pytest

from repro.core import SynthesisOptions, synthesize
from repro.obs import (
    NULL_TRACER,
    Span,
    Tracer,
    TraceSnapshot,
    current_tracer,
    env_trace_settings,
    use_tracer,
)
from repro.serialize import dumps
from repro.suite import get_system


class TestNesting:
    def test_basic_tree(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c", tag="x") as c:
                c.count(items=3)
        [root] = tracer.roots
        assert root.name == "a"
        assert [child.name for child in root.children] == ["b", "c"]
        assert root.children[1].attrs == {"tag": "x"}
        assert root.children[1].counters == {"items": 3}

    def test_deterministic_order(self):
        def build() -> tuple:
            tracer = Tracer()
            with tracer.span("root"):
                for name in ("p1", "p2", "p3"):
                    with tracer.span(name):
                        with tracer.span(f"{name}/sub"):
                            pass
            return tracer.roots[0].signature()

        assert build() == build()

    def test_timestamps_monotone(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        [root] = tracer.roots
        [child] = root.children
        assert root.start <= child.start <= child.end <= root.end

    def test_depth_and_find(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        assert tracer.depth() == 3
        assert tracer.find("c") is not None
        assert tracer.find("nope") is None

    def test_exception_closes_span_and_tags_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("a"):
                raise ValueError("boom")
        [root] = tracer.roots
        assert root.end is not None
        assert root.attrs["error"] == "ValueError"


class TestThreadSafety:
    def test_threads_get_independent_stacks(self):
        tracer = Tracer()

        def work(name: str) -> None:
            with tracer.span(name):
                with tracer.span(f"{name}/inner"):
                    pass

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.roots) == 4
        for root in tracer.roots:
            assert len(root.children) == 1


class TestMaxSpans:
    def test_cap_drops_and_counts(self):
        tracer = Tracer(max_spans=3)
        with tracer.span("a"):
            for _ in range(5):
                with tracer.span("b"):
                    pass
        [root] = tracer.roots
        assert len(root.children) == 2  # 1 root + 2 children hit the cap
        assert tracer.dropped == 3
        assert tracer.snapshot().dropped == 3


class TestSerialization:
    def test_span_round_trip(self):
        tracer = Tracer()
        with tracer.span("a", k="v") as a:
            a.count(n=2)
            with tracer.span("b"):
                pass
        [root] = tracer.roots
        restored = Span.from_dict(root.to_dict())
        assert restored.signature() == root.signature()
        assert restored.attrs == root.attrs
        assert restored.counters == root.counters

    def test_snapshot_round_trip_via_serialize(self):
        from repro.serialize import loads

        tracer = Tracer()
        with tracer.span("a"):
            pass
        snapshot = tracer.snapshot()
        restored = loads(dumps(snapshot))
        assert isinstance(restored, TraceSnapshot)
        assert restored.epoch_wall == snapshot.epoch_wall
        assert [s.signature() for s in restored.spans] == [
            s.signature() for s in snapshot.spans
        ]


class TestAdoption:
    def test_rebases_and_lanes(self):
        worker = Tracer()
        with worker.span("job"):
            with worker.span("inner"):
                pass
        parent = Tracer()
        parent.epoch_wall = worker.epoch_wall - 10.0  # worker started later
        with parent.span("batch"):
            parent.adopt(worker.snapshot().to_dict(), tid=7)
        [batch] = parent.roots
        [job] = batch.children
        assert job.name == "job"
        assert job.tid == 7 and job.children[0].tid == 7
        assert job.start >= 10.0  # shifted by the epoch delta
        assert parent.depth() == 3


class TestAmbient:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER or current_tracer().enabled

    def test_use_tracer_scopes(self):
        tracer = Tracer()
        before = current_tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is before

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", k=1) as span:
            span.set(a=2)
            span.count(b=3)
        assert NULL_TRACER.roots == []

    def test_env_trace_settings(self, monkeypatch):
        # Regression: falsy values must disable, never be mistaken for a
        # trace path ("REPRO_TRACE=0" once wrote a Chrome trace named 0).
        for value, expected in [
            ("", (False, None)),
            ("0", (False, None)),
            ("off", (False, None)),
            ("false", (False, None)),
            ("FALSE", (False, None)),
            ("No", (False, None)),
            ("none", (False, None)),
            ("disabled", (False, None)),
            ("  Off  ", (False, None)),
            ("1", (True, None)),
            ("TRUE", (True, None)),
            (" yes ", (True, None)),
            ("trace.json", (True, "trace.json")),
            ("0.json", (True, "0.json")),
        ]:
            monkeypatch.setenv("REPRO_TRACE", value)
            assert env_trace_settings() == expected, value
        monkeypatch.delenv("REPRO_TRACE")
        assert env_trace_settings() == (False, None)


class TestResultIdentity:
    def test_traced_and_untraced_results_identical(self):
        system = get_system("Table 14.1")
        options = SynthesisOptions()
        untraced = synthesize(list(system.polys), system.signature, options)
        tracer = Tracer()
        with use_tracer(tracer):
            traced = synthesize(list(system.polys), system.signature, options)
        assert dumps(traced.decomposition) == dumps(untraced.decomposition)
        assert traced.op_count == untraced.op_count
        assert traced.initial_op_count == untraced.initial_op_count
        # ... and the trace actually recorded the flow, >= 3 levels deep.
        assert tracer.depth() >= 3
        assert tracer.find("poly_synth") is not None
        assert tracer.find("cce/gcd_pass") is not None
