"""Tests for the requeue-aware job-lifecycle validator
(repro.obs.validate.validate_job_lifecycles)."""

from repro.obs import validate_job_lifecycles


def ev(kind, job="j1", **data):
    return {"kind": "event", "event": kind, "data": {"job": job, **data}}


class TestValidSequences:
    def test_plain_engine_run(self):
        entries = [ev("job_start"), ev("job_end")]
        assert validate_job_lifecycles(entries) == []

    def test_full_service_lifecycle(self):
        entries = [
            ev("job_queued"),
            ev("job_leased"),
            ev("job_start"),
            ev("job_end"),
        ]
        assert validate_job_lifecycles(entries) == []

    def test_requeue_legalizes_a_second_start(self):
        """Lease expiry / crash recovery re-runs a job; the validator
        must not flag the redelivery as a duplicate."""
        entries = [
            ev("job_queued"),
            ev("job_leased"),
            ev("job_start"),
            ev("job_end"),
            ev("job_requeued"),
            ev("job_leased"),
            ev("job_start"),
            ev("job_end"),
        ]
        assert validate_job_lifecycles(entries) == []

    def test_crash_orphan_requeue_closes_the_open_execution(self):
        """A job_requeued while an execution is open is the reaper taking
        back a crashed worker's job — not an error."""
        entries = [
            ev("job_start"),
            ev("job_requeued"),
            ev("job_start"),
            ev("job_end"),
        ]
        assert validate_job_lifecycles(entries) == []

    def test_engine_retry_and_timeout_count_as_redeliveries(self):
        entries = [
            ev("job_start"),
            ev("job_end"),
            ev("retry"),
            ev("job_start"),
            ev("job_end"),
            ev("timeout"),
            ev("job_start"),
            ev("job_end"),
        ]
        assert validate_job_lifecycles(entries) == []

    def test_dead_letter_after_requeues(self):
        entries = [
            ev("job_queued"),
            ev("job_leased"),
            ev("job_requeued"),
            ev("job_leased"),
            ev("job_requeued"),
            ev("job_dead_letter"),
        ]
        assert validate_job_lifecycles(entries) == []

    def test_jobs_are_independent(self):
        entries = [
            ev("job_start", job="a"),
            ev("job_start", job="b"),
            ev("job_end", job="b"),
            ev("job_end", job="a"),
        ]
        assert validate_job_lifecycles(entries) == []

    def test_events_without_a_job_label_are_ignored(self):
        entries = [
            {"kind": "event", "event": "heartbeat", "data": {}},
            {"kind": "event", "event": "job_start", "data": {}},
            "not even a dict",
        ]
        assert validate_job_lifecycles(entries) == []


class TestViolations:
    def test_duplicate_start_without_redelivery(self):
        entries = [
            ev("job_start"),
            ev("job_end"),
            ev("job_start"),
            ev("job_end"),
        ]
        errors = validate_job_lifecycles(entries)
        assert len(errors) == 1
        assert "duplicate 'job_start'" in errors[0]

    def test_nested_start_flagged(self):
        entries = [ev("job_start"), ev("job_start"), ev("job_end")]
        errors = validate_job_lifecycles(entries)
        assert any("already open" in e for e in errors)

    def test_end_without_start(self):
        errors = validate_job_lifecycles([ev("job_end")])
        assert any("'job_end' without 'job_start'" in e for e in errors)

    def test_lease_on_open_execution(self):
        entries = [ev("job_start"), ev("job_leased")]
        errors = validate_job_lifecycles(entries)
        assert any("'job_leased' while an execution is open" in e for e in errors)

    def test_dead_letter_without_history(self):
        errors = validate_job_lifecycles([ev("job_dead_letter")])
        assert any("without any" in e for e in errors)

    def test_nothing_after_terminal(self):
        entries = [ev("job_cancelled"), ev("job_start")]
        errors = validate_job_lifecycles(entries)
        assert any("after terminal" in e for e in errors)

    def test_execution_left_open_at_stream_end(self):
        errors = validate_job_lifecycles([ev("job_start")])
        assert any("left open" in e for e in errors)
