"""The structured event stream: ordering, sinks, env grammar, zero cost."""

import json
import threading

import pytest

from repro.core import SynthesisOptions, clear_synthesis_caches, synthesize
from repro.obs import (
    EVENT_KINDS,
    NULL_EVENTS,
    CallbackSink,
    Event,
    EventsSnapshot,
    EventStream,
    JsonlSink,
    RingBufferSink,
    current_events,
    env_events_settings,
    event_allocation_count,
    use_events,
    validate_event_jsonl,
)
from repro.suite import get_system


class TestEventBasics:
    def test_round_trip(self):
        event = Event(seq=3, ts=0.25, kind="combo_scored", data={"cost": 7})
        doc = event.to_dict()
        assert doc == {
            "kind": "event",
            "event": "combo_scored",
            "seq": 3,
            "ts": 0.25,
            "data": {"cost": 7},
        }
        assert Event.from_dict(doc) == event

    def test_snapshot_round_trip(self):
        stream = EventStream()
        stream.emit("phase_start", name="search")
        stream.emit("phase_end", name="search", degraded=False)
        snapshot = EventsSnapshot.from_dict(stream.snapshot().to_dict())
        assert [e.kind for e in snapshot.events] == ["phase_start", "phase_end"]
        assert snapshot.events[0].data == {"name": "search"}

    def test_from_dict_rejects_other_kinds(self):
        with pytest.raises(ValueError):
            Event.from_dict({"kind": "span"})
        with pytest.raises(ValueError):
            EventsSnapshot.from_dict({"kind": "event"})

    def test_sequence_strictly_increases(self):
        stream = EventStream()
        for _ in range(100):
            stream.emit("heartbeat")
        seqs = [e.seq for e in stream.events]
        assert seqs == list(range(100))

    def test_max_events_counts_drops(self):
        stream = EventStream(max_events=3)
        for _ in range(5):
            stream.emit("heartbeat")
        assert len(stream.events) == 3
        assert stream.dropped == 2
        assert stream.snapshot().dropped == 2

    def test_emit_accepts_kind_data_key(self):
        # "kind" is a natural data key (kernel vs cube); the positional-only
        # parameter must not collide with it.
        stream = EventStream()
        stream.emit("kernel_chosen", kind="cube", gain=3)
        assert stream.events[0].data == {"kind": "cube", "gain": 3}

    def test_thread_safe_total_order(self):
        stream = EventStream()

        def pump():
            for _ in range(200):
                stream.emit("heartbeat")

        threads = [threading.Thread(target=pump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = [e.seq for e in stream.events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 800


class TestSinks:
    def test_jsonl_sink_streams_valid_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        stream = EventStream(sinks=[JsonlSink(str(path))])
        stream.emit("job_start", job="a")
        stream.emit("job_end", job="a", error=None)
        stream.close()
        content = path.read_text()
        assert validate_event_jsonl(content) == []
        lines = [json.loads(line) for line in content.splitlines()]
        assert [entry["event"] for entry in lines] == ["job_start", "job_end"]

    def test_callback_sink_swallows_exceptions(self):
        seen = []

        def bad(event):
            seen.append(event.kind)
            raise RuntimeError("consumer bug")

        stream = EventStream(sinks=[CallbackSink(bad)])
        stream.emit("heartbeat")  # must not raise
        assert seen == ["heartbeat"]

    def test_multiple_sinks_fan_out(self):
        ring = RingBufferSink()
        seen = []
        stream = EventStream(sinks=[ring, CallbackSink(seen.append)])
        stream.emit("cache_hit", job="x")
        assert [e.kind for e in ring.events] == ["cache_hit"]
        assert [e.kind for e in seen] == ["cache_hit"]


class TestAdopt:
    def test_adopt_resequences_and_labels(self):
        child = EventStream()
        child.emit("job_start", job="inner")
        child.emit("phase_start", name="search")
        parent = EventStream()
        parent.emit("cache_miss", job="outer")
        parent.adopt(child.snapshot().to_dict(), job="outer")
        kinds = [e.kind for e in parent.events]
        assert kinds == ["cache_miss", "job_start", "phase_start"]
        seqs = [e.seq for e in parent.events]
        assert seqs == [0, 1, 2]
        # job stamped onto adopted events, existing labels preserved
        assert parent.events[1].data["job"] == "inner"
        assert parent.events[2].data["job"] == "outer"

    def test_adopt_rebases_timestamps(self):
        child = EventStream()
        child.emit("heartbeat")
        parent = EventStream()
        snapshot = child.snapshot()
        snapshot.epoch_wall = parent.epoch_wall + 2.0
        parent.adopt(snapshot)
        assert parent.events[0].ts >= 2.0


class TestAmbient:
    def test_default_is_null(self):
        assert current_events().enabled in (False, True)  # never raises

    def test_use_events_scopes(self):
        stream = EventStream()
        before = current_events()
        with use_events(stream):
            assert current_events() is stream
        assert current_events() is before

    def test_null_stream_is_inert(self):
        NULL_EVENTS.emit("heartbeat", anything=1)
        NULL_EVENTS.adopt({"kind": "events", "epoch_wall": 0.0})
        NULL_EVENTS.close()
        assert NULL_EVENTS.events == []
        assert NULL_EVENTS.enabled is False

    def test_env_events_settings_falsy_matrix(self, monkeypatch):
        for value, expected in [
            ("", (False, None)),
            ("0", (False, None)),
            ("false", (False, None)),
            ("OFF", (False, None)),
            ("no", (False, None)),
            ("none", (False, None)),
            ("Disabled", (False, None)),
            ("1", (True, None)),
            ("on", (True, None)),
            ("events.jsonl", (True, "events.jsonl")),
        ]:
            monkeypatch.setenv("REPRO_EVENTS", value)
            assert env_events_settings() == expected, value
        monkeypatch.delenv("REPRO_EVENTS")
        assert env_events_settings() == (False, None)


class TestValidator:
    def test_valid_stream_passes(self):
        stream = EventStream()
        stream.emit("phase_start", name="x")
        stream.emit("phase_end", name="x")
        lines = "\n".join(
            json.dumps(e.to_dict(), sort_keys=True) for e in stream.events
        )
        assert validate_event_jsonl(lines) == []

    def test_violations_reported(self):
        bad = "\n".join(
            [
                "not json",
                '{"kind": "event", "event": "no_such_kind", "seq": 0, "ts": 0}',
                '{"kind": "event", "event": "heartbeat", "seq": 5, "ts": 0}',
                '{"kind": "event", "event": "heartbeat", "seq": 5, "ts": -1}',
                '{"kind": "span"}',
            ]
        )
        errors = validate_event_jsonl(bad)
        assert any("not valid JSON" in e for e in errors)
        assert any("unknown event kind" in e for e in errors)
        assert any("does not increase" in e for e in errors)
        assert any("'ts' must be" in e for e in errors)
        assert any("'kind' must be" in e for e in errors)

    def test_taxonomy_is_closed(self):
        assert "combo_scored" in EVENT_KINDS
        assert "kernel_chosen" in EVENT_KINDS
        assert "heartbeat" in EVENT_KINDS


class TestZeroCost:
    def test_disabled_synthesis_allocates_no_events(self):
        """The NULL_EVENTS hot path must allocate zero Event objects."""
        system = get_system("Table 14.1")
        options = SynthesisOptions()
        clear_synthesis_caches()
        synthesize(list(system.polys), system.signature, options)  # warm imports
        clear_synthesis_caches()
        before = event_allocation_count()
        synthesize(list(system.polys), system.signature, options)
        assert event_allocation_count() == before

    def test_enabled_synthesis_does_allocate(self):
        system = get_system("Table 14.1")
        clear_synthesis_caches()
        stream = EventStream()
        before = event_allocation_count()
        with use_events(stream):
            synthesize(list(system.polys), system.signature, SynthesisOptions())
        assert event_allocation_count() > before
        kinds = {e.kind for e in stream.events}
        assert "phase_start" in kinds
        assert "combo_scored" in kinds

    def test_events_do_not_change_results(self):
        from repro.serialize import decomposition_to_dict

        system = get_system("Table 14.1")
        options = SynthesisOptions()
        clear_synthesis_caches()
        plain = synthesize(list(system.polys), system.signature, options)
        clear_synthesis_caches()
        with use_events(EventStream()):
            observed = synthesize(
                list(system.polys), system.signature, options
            )
        assert decomposition_to_dict(observed.decomposition) == \
            decomposition_to_dict(plain.decomposition)
        assert observed.op_count == plain.op_count
