"""Tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.core.metrics import Timings
from repro.obs import MetricsRegistry, get_registry, observe_timings


class TestCounter:
    def test_monotone(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("hits", tier="memory").inc()
        registry.counter("hits", tier="disk").inc(5)
        assert registry.counter("hits", tier="memory").value == 1
        assert registry.counter("hits", tier="disk").value == 5


class TestGauge:
    def test_up_and_down(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("utilization")
        gauge.set(0.5)
        gauge.inc(0.25)
        gauge.dec(0.5)
        assert gauge.value == pytest.approx(0.25)


class TestHistogram:
    def test_bucketing(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.cumulative_counts() == [1, 2, 3, 4]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(55.55)

    def test_boundary_lands_in_its_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0))
        histogram.observe(1.0)  # le="1" is inclusive
        assert histogram.cumulative_counts()[0] == 1

    def test_empty_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.counter("c", a="1") is not registry.counter("c", a="2")

    def test_collect_sorted_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        assert [m.name for m in registry.collect()] == ["a", "b"]
        registry.reset()
        assert registry.collect() == []

    def test_as_dict_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", x="1").inc(2)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        data = registry.as_dict()
        assert data["kind"] == "metrics"
        kinds = {entry["name"]: entry["kind"] for entry in data["metrics"]}
        assert kinds == {"c": "counter", "h": "histogram"}

    def test_global_registry_is_a_singleton(self):
        assert get_registry() is get_registry()


class TestObserveTimings:
    def test_feeds_phases_and_counters(self):
        timings = Timings()
        with timings.phase("cce") as clock:
            clock.count(representations=4)
        with timings.phase("search"):
            pass
        registry = MetricsRegistry()
        observe_timings(timings, registry)
        histogram = registry.histogram("repro_phase_seconds", phase="cce")
        assert histogram.count == 1
        counter = registry.counter(
            "repro_phase_representations_total", phase="cce"
        )
        assert counter.value == 4
