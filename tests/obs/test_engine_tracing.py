"""Cross-process span stitching through the batch engine, plus CLI tracing."""

import json
import subprocess
import sys
from pathlib import Path

from repro import BatchEngine, BatchJob, RunConfig
from repro.__main__ import main
from repro.obs import (
    Tracer,
    chrome_trace,
    chrome_trace_depth,
    event_names,
    use_tracer,
    validate_chrome_trace,
)
from repro.suite import get_system

REPO_ROOT = Path(__file__).resolve().parents[2]
SYSTEMS = ("Table 14.1", "Table 14.2")


def jobs_for(names=SYSTEMS):
    return [BatchJob(system=get_system(name)) for name in names]


def traced_run(workers: int):
    tracer = Tracer()
    with use_tracer(tracer):
        report = BatchEngine(RunConfig(workers=workers)).run(jobs_for())
    return tracer, report


def job_subtrees(tracer: Tracer):
    [batch] = tracer.roots
    assert batch.name == "batch"
    return [c for c in batch.children if c.name.startswith("job:")]


class TestStitching:
    def test_serial_run_nests_jobs_under_batch(self):
        tracer, report = traced_run(workers=1)
        jobs = job_subtrees(tracer)
        assert {j.name for j in jobs} == {f"job:{name}" for name in SYSTEMS}
        assert tracer.depth() >= 4  # batch > job > poly_synth > phase
        assert report.pool.mode == "serial"

    def test_pool_run_stitches_worker_trees(self):
        tracer, report = traced_run(workers=2)
        jobs = job_subtrees(tracer)
        assert {j.name for j in jobs} == {f"job:{name}" for name in SYSTEMS}
        # Each stitched subtree lives in its own lane and records the flow.
        assert len({j.tid for j in jobs}) == len(jobs)
        for job in jobs:
            assert all(child.tid == job.tid for child in job.children)
            assert job.start >= 0.0
        assert tracer.depth() >= 4
        assert report.pool.mode in ("pool", "fallback")

    def test_workers_1_and_2_produce_equivalent_trees(self):
        serial, _ = traced_run(workers=1)
        pooled, _ = traced_run(workers=2)
        signatures = lambda t: {j.signature() for j in job_subtrees(t)}  # noqa: E731
        assert signatures(serial) == signatures(pooled)
        assert len(signatures(serial)) == len(SYSTEMS)

    def test_cache_hits_marked_not_stitched(self):
        tracer = Tracer()
        engine = BatchEngine(RunConfig(workers=1))
        with use_tracer(tracer):
            engine.run(jobs_for())
            engine.run(jobs_for())
        warm = tracer.roots[1]
        markers = [c for c in warm.children if c.name == "cache_hit"]
        assert len(markers) == len(SYSTEMS)
        assert not any(c.name.startswith("job:") for c in warm.children)

    def test_traced_results_match_untraced(self):
        untraced = BatchEngine(RunConfig(workers=1)).run(jobs_for())
        tracer = Tracer()
        with use_tracer(tracer):
            traced = BatchEngine(RunConfig(workers=1)).run(jobs_for())
        for a, b in zip(untraced.results, traced.results):
            # Byte-identical modulo timing measurements, like serial vs pool.
            assert a.canonical_result() == b.canonical_result()

    def test_chrome_export_of_stitched_run(self):
        tracer, _ = traced_run(workers=2)
        document = chrome_trace(tracer.snapshot())
        assert validate_chrome_trace(document) == []
        assert chrome_trace_depth(document) >= 3
        names = event_names(document)
        assert "batch" in names
        assert any(name.startswith("job:") for name in names)


class TestCli:
    def test_trace_command_writes_valid_deep_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = main(["trace", "--system", "Table 14.1", "--out", str(out)])
        assert rc == 0
        document = json.loads(out.read_text())
        assert validate_chrome_trace(document) == []
        assert chrome_trace_depth(document) >= 3
        assert "depth" in capsys.readouterr().out

    def test_batch_trace_out_and_stats(self, tmp_path, capsys):
        out = tmp_path / "batch.json"
        rc = main(
            [
                "batch",
                "--systems", ",".join(SYSTEMS),
                "--workers", "2",
                "--trace-out", str(out),
                "--stats",
            ]
        )
        assert rc == 0
        document = json.loads(out.read_text())
        assert validate_chrome_trace(document) == []
        names = event_names(document)
        assert "batch" in names and any(n.startswith("job:") for n in names)
        assert "# TYPE" in capsys.readouterr().out  # --stats prints Prometheus

    def test_check_trace_script_accepts_batch_trace(self, tmp_path):
        out = tmp_path / "batch.json"
        assert main(
            ["batch", "--systems", ",".join(SYSTEMS), "--workers", "2",
             "--trace-out", str(out)]
        ) == 0
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "check_trace.py"),
                str(out),
                "--min-depth", "3",
                "--require-stitched",
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
