"""Event-stream stitching across retries and degraded reruns.

The contract under test: a worker's events ride home inside the job
payload and are adopted by the parent stream exactly once — from the
*accepted* payload only.  A retried attempt's events are discarded with
its payload, so no job ever contributes duplicated ``job_start`` /
``job_end`` markers, and parent-side fault events (``retry``,
``timeout``, ``breaker``, ``degradation``) interleave in emission order.
"""

from collections import Counter

from repro.config import RetryPolicy, RunConfig
from repro.engine import BatchEngine, BatchJob
from repro.obs import EventStream, use_events
from repro.suite import get_system
from repro.testing import ENV_VAR

FAST_RETRY = RetryPolicy(max_retries=2, backoff_seconds=0.01, jitter=0.0)

SYSTEMS = ("Table 14.1", "Table 14.2")


def job(name, system="Quad", method="proposed"):
    return BatchJob(system=get_system(system), method=method, name=name)


def observed_run(engine, jobs):
    stream = EventStream()
    with use_events(stream):
        report = engine.run(jobs)
    return stream, report


def kind_counts(stream):
    return Counter(e.kind for e in stream.events)


def job_markers(stream, kind):
    return [e.data.get("job") for e in stream.events if e.kind == kind]


class TestAdoptionBasics:
    def test_serial_and_pooled_runs_adopt_equivalent_job_events(self):
        jobs = lambda: [  # noqa: E731
            BatchJob(system=get_system(name)) for name in SYSTEMS
        ]
        serial, _ = observed_run(BatchEngine(RunConfig(workers=1)), jobs())
        pooled, _ = observed_run(BatchEngine(RunConfig(workers=2)), jobs())
        for stream in (serial, pooled):
            assert sorted(job_markers(stream, "job_start")) == sorted(SYSTEMS)
            assert sorted(job_markers(stream, "job_end")) == sorted(SYSTEMS)
        # Workers=1 and workers=2 record the same flow events per job.
        s, p = kind_counts(serial), kind_counts(pooled)
        for kind in ("combo_scored", "kernel_chosen", "phase_start"):
            assert s[kind] == p[kind], kind

    def test_adopted_events_keep_total_order(self):
        stream, _ = observed_run(
            BatchEngine(RunConfig(workers=2)),
            [BatchJob(system=get_system(name)) for name in SYSTEMS],
        )
        seqs = [e.seq for e in stream.events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_cached_jobs_emit_cache_hit_not_job_events(self):
        engine = BatchEngine(RunConfig(workers=1))
        jobs = [BatchJob(system=get_system("Table 14.1"))]
        observed_run(engine, jobs)
        warm, report = observed_run(engine, jobs)
        assert report.cache_hits == 1
        counts = kind_counts(warm)
        assert counts["cache_hit"] == 1
        assert counts["job_start"] == 0
        assert counts["job_end"] == 0


class TestRetryDeduplication:
    def test_retried_job_adopts_events_once(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "raise@job:flaky")  # attempt 0 only
        engine = BatchEngine(RunConfig(retry=FAST_RETRY))
        stream, report = observed_run(engine, [job("flaky")])
        assert report.results[0].ok
        assert report.retries == 1
        counts = kind_counts(stream)
        # Only the accepted (second) attempt's worker events are adopted.
        assert job_markers(stream, "job_start") == ["flaky"]
        assert job_markers(stream, "job_end") == ["flaky"]
        assert counts["retry"] == 1
        retry = next(e for e in stream.events if e.kind == "retry")
        assert retry.data == {"job": "flaky", "attempt": 1}

    def test_exhausted_retries_still_single_job_end(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "raise@job:doomed:attempts=99")
        engine = BatchEngine(
            RunConfig(retry=RetryPolicy(max_retries=1, backoff_seconds=0.01))
        )
        stream, report = observed_run(engine, [job("doomed")])
        assert not report.results[0].ok
        # The last (failing) payload is the accepted one: one pair only.
        assert job_markers(stream, "job_start") == ["doomed"]
        ends = [e for e in stream.events if e.kind == "job_end"]
        assert len(ends) == 1
        assert "InjectedFault" in str(ends[0].data.get("error"))
        assert kind_counts(stream)["retry"] == 1

    def test_pooled_crash_retry_does_not_duplicate(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "crash@job:victim")
        engine = BatchEngine(RunConfig(workers=2, retry=FAST_RETRY))
        stream, report = observed_run(
            engine, [job("victim"), job("bystander", "MVCS")]
        )
        assert all(r.ok for r in report.results)
        assert report.retries >= 1
        starts = Counter(job_markers(stream, "job_start"))
        ends = Counter(job_markers(stream, "job_end"))
        assert starts == {"victim": 1, "bystander": 1}
        assert ends == {"victim": 1, "bystander": 1}
        assert kind_counts(stream)["retry"] >= 1


class TestDegradedRerun:
    def test_breaker_rerun_emits_breaker_and_degradation(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "raise@job:offender:attempts=99")
        engine = BatchEngine(
            RunConfig(
                retry=RetryPolicy(
                    max_retries=0, backoff_seconds=0.01, breaker_threshold=1
                )
            )
        )
        engine.run([job("offender")])  # trips the breaker
        stream, report = observed_run(engine, [job("offender")])
        (result,) = report.results
        assert result.degraded
        counts = kind_counts(stream)
        assert counts["breaker"] == 1
        assert counts["degradation"] >= 1
        # The in-process degraded rerun still produces one stitched pair.
        assert job_markers(stream, "job_start") == ["offender"]
        assert job_markers(stream, "job_end") == ["offender"]

    def test_timeout_rerun_single_adoption(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "hang@job:stuck")
        engine = BatchEngine(
            RunConfig(
                workers=2,
                retry=RetryPolicy(
                    max_retries=1, backoff_seconds=0.01, job_timeout_seconds=2.0
                ),
            )
        )
        stream, report = observed_run(
            engine, [job("stuck"), job("fine", "MVCS")]
        )
        assert report.timeouts == 1
        by_name = {r.name: r for r in report.results}
        assert by_name["stuck"].timed_out
        counts = kind_counts(stream)
        assert counts["timeout"] == 1
        assert counts["degradation"] >= 1
        starts = Counter(job_markers(stream, "job_start"))
        # The hung attempt's worker was killed before returning a payload,
        # so only the degraded rerun contributes events for "stuck".
        assert starts["stuck"] == 1
        assert starts["fine"] == 1
