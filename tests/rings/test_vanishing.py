"""Tests for vanishing polynomials of Z_2^m."""

from repro.poly import Polynomial, parse_polynomial as P
from repro.rings import (
    BitVectorSignature,
    exhaustive_functions_equal,
    is_vanishing,
    smallest_vanishing_degree,
    vanishing_generators,
)

TINY = BitVectorSignature((("x", 2), ("y", 2)), 4)


class TestIsVanishing:
    def test_zero_vanishes(self):
        assert is_vanishing(Polynomial.zero(("x", "y")), TINY)

    def test_classic_vanisher(self):
        # 8 * x(x-1) vanishes mod 16 (x(x-1) is always even).
        assert is_vanishing(P("8*x^2 - 8*x", variables=("x", "y")), TINY)

    def test_falling_factorial_past_range(self):
        # Y_4(x) = x(x-1)(x-2)(x-3) vanishes on 2-bit x.
        y4 = P("x*(x-1)*(x-2)*(x-3)", variables=("x", "y"))
        assert is_vanishing(y4, TINY)

    def test_non_vanisher(self):
        assert not is_vanishing(P("x + 1", variables=("x", "y")), TINY)


class TestGenerators:
    def test_all_generators_vanish_exhaustively(self):
        zero = Polynomial.zero(("x", "y"))
        generators = list(vanishing_generators(TINY))
        assert generators, "expected at least one generator"
        for gen in generators:
            assert exhaustive_functions_equal(gen, zero, TINY), str(gen)

    def test_degree_cap_respected(self):
        for gen in vanishing_generators(TINY, max_total_degree=3):
            assert gen.total_degree() <= 3


class TestSmallestVanishingDegree:
    def test_sixteen_bit_is_18(self):
        sig = BitVectorSignature.uniform(("x", "y"), 16)
        assert smallest_vanishing_degree(sig) == 18

    def test_tiny(self):
        assert smallest_vanishing_degree(TINY) == 4

    def test_narrow_input(self):
        sig = BitVectorSignature((("x", 1),), 16)
        assert smallest_vanishing_degree(sig) == 2
