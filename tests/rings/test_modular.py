"""Tests for Z_2^m number-theoretic helpers."""

import pytest
from hypothesis import given
import hypothesis.strategies as st

from repro.rings import (
    coefficient_modulus,
    degree_bound,
    factorial_two_adic_valuation,
    smarandache_lambda,
    two_adic_valuation,
)


class TestValuations:
    def test_two_adic(self):
        assert two_adic_valuation(8) == 3
        assert two_adic_valuation(12) == 2
        assert two_adic_valuation(7) == 0

    def test_two_adic_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            two_adic_valuation(0)

    @given(st.integers(min_value=1, max_value=500))
    def test_factorial_valuation_legendre(self, n):
        # Legendre's formula vs direct factorial computation.
        import math

        direct = two_adic_valuation(math.factorial(n))
        assert factorial_two_adic_valuation(n) == direct


class TestSmarandache:
    def test_paper_value(self):
        # lambda(2^3) = 4: 4! = 24 is the least factorial divisible by 8.
        assert smarandache_lambda(3) == 4

    def test_sixteen_bit(self):
        assert smarandache_lambda(16) == 18

    def test_small(self):
        assert smarandache_lambda(0) == 0
        assert smarandache_lambda(1) == 2

    @given(st.integers(min_value=1, max_value=64))
    def test_defining_property(self, m):
        import math

        lam = smarandache_lambda(m)
        assert math.factorial(lam) % (1 << m) == 0
        assert math.factorial(lam - 1) % (1 << m) != 0


class TestCoefficientModulus:
    def test_unit_tuple(self):
        assert coefficient_modulus(3, (0, 0)) == 8

    def test_factorial_reduction(self):
        # k = (2,): 2! = 2, so modulus is 2^m / 2.
        assert coefficient_modulus(3, (2,)) == 4
        # k = (4,): 4! has 2-valuation 3 -> modulus 1 (coefficient vanishes).
        assert coefficient_modulus(3, (4,)) == 1

    def test_multivariate_product(self):
        # k = (2, 2): valuation 1 + 1 = 2 -> 2^3 / 4 = 2.
        assert coefficient_modulus(3, (2, 2)) == 2

    @given(
        st.integers(min_value=1, max_value=20),
        st.tuples(st.integers(min_value=0, max_value=10),
                  st.integers(min_value=0, max_value=10)),
    )
    def test_divides_full_modulus(self, m, k):
        modulus = coefficient_modulus(m, k)
        assert (1 << m) % modulus == 0


class TestDegreeBound:
    def test_small_input_width_dominates(self):
        # 1-bit input: only Y_0, Y_1 matter.
        assert degree_bound(1, 16) == 2

    def test_lambda_dominates(self):
        assert degree_bound(16, 16) == 18

    def test_paper_example_widths(self):
        # f: Z_2 x Z_4 -> Z_8: mu = (2, 4) (both below lambda(8) = 4).
        assert degree_bound(1, 3) == 2
        assert degree_bound(2, 3) == 4
