"""Tests for the Buchberger engine over Q."""

from fractions import Fraction

import pytest

from repro.poly import parse_polynomial as P
from repro.rings.groebner import (
    QPolynomial,
    buchberger,
    from_integer_polynomial,
    ideal_membership,
    reduce_polynomial,
    s_polynomial,
    to_integer_polynomial,
)
from repro.poly.orderings import lex_key


def q(text, variables):
    return from_integer_polynomial(P(text, variables=variables), tuple(variables))


class TestConversion:
    def test_roundtrip(self):
        poly = P("3*x^2 - 2*x*y + 7")
        assert to_integer_polynomial(from_integer_polynomial(poly)) == poly

    def test_fractional_rejected(self):
        bad = QPolynomial(("x",), {(1,): Fraction(1, 2)})
        with pytest.raises(ValueError):
            to_integer_polynomial(bad)


class TestReduction:
    def test_exact_multiple_reduces_to_zero(self):
        f = q("x^2 + 6*x*y + 9*y^2", ("x", "y"))
        g = q("x + 3*y", ("x", "y"))
        assert reduce_polynomial(f, [g]).is_zero

    def test_remainder_not_divisible(self):
        f = q("x^2 + 1", ("x",))
        g = q("x", ("x",))
        remainder = reduce_polynomial(f, [g])
        assert to_integer_polynomial(remainder) == 1

    def test_s_polynomial_cancels_leads(self):
        f = q("x^2 + y", ("x", "y"))
        g = q("x*y + 1", ("x", "y"))
        s = s_polynomial(f, g, lex_key)
        # leading monomial x^2 y cancelled
        assert all(e != (2, 1) for e in s.terms)


class TestBuchberger:
    def test_textbook_basis(self):
        # <x^2 - y, x^3 - x> over lex x > y: GB contains y-only relations.
        f = q("x^2 - y", ("x", "y"))
        g = q("x^3 - x", ("x", "y"))
        basis = buchberger([f, g])
        # x^3 - x = x (x^2 - y) + (xy - x): so xy - x in ideal; S-polys give
        # y^2 - y as the elimination ideal's generator.
        target = q("y^2 - y", ("x", "y"))
        assert ideal_membership(target, basis)

    def test_membership_negative(self):
        f = q("x^2 - y", ("x", "y"))
        basis = buchberger([f])
        assert not ideal_membership(q("x + y", ("x", "y")), basis)

    def test_empty_generators(self):
        assert buchberger([]) == []

    def test_ideal_containing_one(self):
        f = q("x", ("x",))
        g = q("x + 1", ("x",))
        basis = buchberger([f, g])
        assert ideal_membership(q("1", ("x",)), basis)
