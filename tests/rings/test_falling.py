"""Tests for falling factorials and Stirling basis conversion."""

import hypothesis.strategies as st
from hypothesis import given

from repro.expr import expr_op_count, expr_to_polynomial
from repro.poly import Polynomial, parse_polynomial as P
from repro.rings import (
    falling_eval,
    falling_factorial_dense,
    falling_factorial_expr,
    falling_factorial_poly,
    falling_to_power,
    power_to_falling,
    stirling_first_signed,
    stirling_second,
)


class TestFallingFactorials:
    def test_definition_cases(self):
        assert falling_factorial_poly("x", 0) == 1
        assert falling_factorial_poly("x", 1) == P("x")
        assert falling_factorial_poly("x", 2) == P("x^2 - x")
        assert falling_factorial_poly("x", 3) == P("x^3 - 3*x^2 + 2*x")

    def test_recurrence(self):
        # Y_k(x) = (x - k + 1) * Y_{k-1}(x)
        for k in range(1, 7):
            expected = falling_factorial_poly("x", k - 1) * (P("x") - (k - 1))
            assert falling_factorial_poly("x", k) == expected

    @given(st.integers(min_value=0, max_value=8), st.integers(min_value=-10, max_value=10))
    def test_eval_matches_poly(self, k, x):
        assert falling_eval(k, x) == falling_factorial_poly("x", k).evaluate({"x": x})

    def test_expr_product_form(self):
        expr = falling_factorial_expr("x", 3)
        assert expr_to_polynomial(expr) == falling_factorial_poly("x", 3)
        count = expr_op_count(expr)
        # x(x-1)(x-2): 2 multipliers, 2 constant subtractions
        assert (count.mul, count.add) == (2, 2)

    def test_dense_cached_tuple(self):
        assert falling_factorial_dense(2) == (0, -1, 1)


class TestStirlingNumbers:
    def test_second_kind_table(self):
        # classic small values
        assert stirling_second(4, 2) == 7
        assert stirling_second(5, 3) == 25
        assert stirling_second(3, 3) == 1
        assert stirling_second(3, 0) == 0

    def test_first_kind_signed_table(self):
        assert stirling_first_signed(3, 1) == 2
        assert stirling_first_signed(3, 2) == -3
        assert stirling_first_signed(4, 2) == 11

    @given(st.integers(min_value=0, max_value=9))
    def test_expansion_identity(self, n):
        # x^n = sum_k S2(n,k) Y_k(x) as polynomials.
        x_power = Polynomial.from_dense([0] * n + [1], "x")
        total = Polynomial.zero(("x",))
        for k in range(n + 1):
            total = total + falling_factorial_poly("x", k).scale(stirling_second(n, k))
        assert total == x_power

    @given(st.integers(min_value=0, max_value=9))
    def test_first_kind_is_falling_expansion(self, k):
        dense = falling_factorial_dense(k)
        for n, coeff in enumerate(dense):
            assert coeff == stirling_first_signed(k, n)


class TestBasisConversion:
    @given(st.lists(st.integers(min_value=-20, max_value=20), min_size=0, max_size=7))
    def test_roundtrip(self, dense):
        while dense and dense[-1] == 0:
            dense.pop()
        falling = power_to_falling(dense)
        assert falling_to_power(falling) == dense

    def test_known_conversion(self):
        # x^2 = Y_2(x) + Y_1(x)
        assert power_to_falling([0, 0, 1]) == {1: 1, 2: 1}

    def test_empty(self):
        assert power_to_falling([]) == {}
        assert falling_to_power({}) == []
