"""Tests for Chen's canonical form over bit-vector signatures."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.expr import expr_to_polynomial
from repro.poly import Polynomial, parse_polynomial as P
from repro.rings import (
    BitVectorSignature,
    canonical_reduce,
    exhaustive_functions_equal,
    functions_equal,
    to_canonical,
)
from tests.conftest import polynomials

TINY = BitVectorSignature((("x", 2), ("y", 2)), 4)


class TestSignature:
    def test_uniform(self):
        sig = BitVectorSignature.uniform(("x", "y"), 16)
        assert sig.width_of("x") == 16 and sig.output_width == 16

    def test_uniform_with_output(self):
        sig = BitVectorSignature.uniform(("x",), 8, output_width=16)
        assert sig.output_width == 16

    def test_unknown_variable(self):
        with pytest.raises(KeyError):
            TINY.width_of("q")

    def test_modulus(self):
        assert TINY.modulus == 16


class TestPaperExamples:
    def test_section_14_3_1_F(self):
        sig = BitVectorSignature.uniform(("x", "y", "z"), 16)
        F = P(
            "4*x^2*y^2 - 4*x^2*y - 4*x*y^2 + 4*x*y + 5*z^2*x - 5*z*x",
            variables=("x", "y", "z"),
        )
        cf = to_canonical(F, sig)
        assert dict(cf.coefficients) == {(2, 2, 0): 4, (1, 0, 2): 5}

    def test_section_14_3_1_G(self):
        sig = BitVectorSignature.uniform(("x", "y", "z"), 16)
        G = P(
            "7*x^2*z^2 - 7*x^2*z - 7*x*z^2 + 7*z*x + 3*y^2*x - 3*y*x",
            variables=("x", "y", "z"),
        )
        cg = to_canonical(G, sig)
        assert dict(cg.coefficients) == {(2, 0, 2): 7, (1, 2, 0): 3}

    def test_mixed_width_example(self):
        # f: Z_2^1 x Z_2^2 -> Z_2^3 given pointwise in the paper, with
        # representative polynomial F = 1 + 2y + x y^2.
        sig = BitVectorSignature((("x", 1), ("y", 2)), 3)
        F = P("1 + 2*y + x*y^2", variables=("x", "y"))
        table = {
            (0, 0): 1, (0, 1): 3, (0, 2): 5, (0, 3): 7,
            (1, 0): 1, (1, 1): 4, (1, 2): 1, (1, 3): 0,
        }
        for (x, y), want in table.items():
            assert F.evaluate_mod({"x": x, "y": y}, 8) == want
        # Canonical round trip preserves the function.
        reduced = canonical_reduce(F, sig)
        for (x, y), want in table.items():
            assert reduced.evaluate_mod({"x": x, "y": y}, 8) == want


class TestCanonicalProperties:
    @settings(max_examples=40, deadline=None)
    @given(polynomials(nvars=2, max_terms=5, max_exp=5, max_coeff=30))
    def test_reduction_preserves_function(self, poly):
        reduced = canonical_reduce(poly, TINY)
        assert exhaustive_functions_equal(poly, reduced, TINY)

    @settings(max_examples=40, deadline=None)
    @given(polynomials(nvars=2, max_terms=5, max_exp=5, max_coeff=30))
    def test_idempotent(self, poly):
        once = to_canonical(poly, TINY)
        twice = to_canonical(once.to_polynomial(), TINY)
        assert once == twice

    @settings(max_examples=30, deadline=None)
    @given(
        polynomials(nvars=2, max_terms=4, max_exp=4, max_coeff=20),
        polynomials(nvars=2, max_terms=4, max_exp=4, max_coeff=20),
    )
    def test_canonical_equality_is_functional_equality(self, a, b):
        assert functions_equal(a, b, TINY) == exhaustive_functions_equal(a, b, TINY)

    @settings(max_examples=30, deadline=None)
    @given(polynomials(nvars=2, max_terms=4, max_exp=4, max_coeff=20))
    def test_vanishing_difference(self, poly):
        reduced = canonical_reduce(poly, TINY)
        difference = poly - reduced
        # The difference must vanish everywhere on the signature.
        assert exhaustive_functions_equal(
            difference, Polynomial.zero(difference.vars), TINY
        )

    def test_degree_capped_by_mu(self):
        sig = BitVectorSignature((("x", 1),), 3)
        # x^5 over a 1-bit input collapses to x.
        assert canonical_reduce(P("x^5"), sig) == P("x")

    def test_undeclared_variable_rejected(self):
        with pytest.raises(KeyError):
            to_canonical(P("q + 1"), TINY)


class TestCanonicalExpr:
    def test_to_expr_round_trip(self):
        sig = BitVectorSignature.uniform(("x", "y"), 16)
        poly = P("x^2*y - x*y", variables=("x", "y"))
        cf = to_canonical(poly, sig)
        assert expr_to_polynomial(cf.to_expr()) == poly

    def test_str_shows_falling_factors(self):
        sig = BitVectorSignature.uniform(("x",), 16)
        cf = to_canonical(P("x^2 - x"), sig)
        assert "Y2(x)" in str(cf)
