"""One-bit inputs: the boolean corner of the finite-ring machinery."""

from repro.poly import parse_polynomial as P
from repro.rings import BitVectorSignature, canonical_reduce, functions_equal


BOOL = BitVectorSignature((("x", 1), ("y", 1)), 8)


class TestBooleanIdempotence:
    def test_square_collapses(self):
        # On {0,1}, x^2 == x.
        assert canonical_reduce(P("x^2", variables=("x", "y")), BOOL) == P("x")

    def test_any_power_collapses(self):
        for k in (2, 3, 7):
            assert functions_equal(
                P(f"x^{k}", variables=("x", "y")),
                P("x", variables=("x", "y")),
                BOOL,
            )

    def test_and_gate_polynomial(self):
        # x*y is already canonical (the AND gate).
        assert canonical_reduce(P("x*y", variables=("x", "y")), BOOL) == P("x*y")

    def test_xor_polynomial_mod2(self):
        # Over m=1 output, x + y computes XOR; x + y - 2xy does too.
        xor_sig = BitVectorSignature((("x", 1), ("y", 1)), 1)
        assert functions_equal(
            P("x + y", variables=("x", "y")),
            P("x + y - 2*x*y", variables=("x", "y")),
            xor_sig,
        )

    def test_not_equal_functions_detected(self):
        assert not functions_equal(
            P("x*y", variables=("x", "y")),
            P("x + y", variables=("x", "y")),
            BOOL,
        )
