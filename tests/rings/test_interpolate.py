"""Tests for polynomial modeling by finite-difference interpolation."""

from itertools import product

from hypothesis import given, settings

from repro.poly import Polynomial
from repro.rings import (
    BitVectorSignature,
    fit_function,
    fit_table,
    model_polynomial,
    to_canonical,
)
from tests.conftest import polynomials

TINY = BitVectorSignature((("x", 2), ("y", 2)), 4)
UNI = BitVectorSignature((("x", 3),), 3)


def exhaustive_match(func, model, signature):
    variables = signature.variables
    modulus = signature.modulus
    for point in product(
        *(range(1 << signature.width_of(v)) for v in variables)
    ):
        env = dict(zip(variables, point))
        assert model.evaluate_mod(env, modulus) == func(*point) % modulus, point


class TestKnownFunctions:
    def test_square(self):
        model = model_polynomial(lambda x: x * x, UNI)
        exhaustive_match(lambda x: x * x, model, UNI)
        assert model == Polynomial.parse("x^2")

    def test_affine(self):
        model = model_polynomial(lambda x: 3 * x + 5, UNI)
        assert model == Polynomial.parse("3*x + 5")

    def test_bivariate_product(self):
        model = model_polynomial(lambda x, y: x * y + 2, TINY)
        exhaustive_match(lambda x, y: x * y + 2, model, TINY)

    def test_paper_mixed_width_example(self):
        # the f: Z_2^1 x Z_2^2 -> Z_2^3 table from Section 14.3.1
        sig = BitVectorSignature((("x", 1), ("y", 2)), 3)
        table = {
            (0, 0): 1, (0, 1): 3, (0, 2): 5, (0, 3): 7,
            (1, 0): 1, (1, 1): 4, (1, 2): 1, (1, 3): 0,
        }
        model = fit_table(table, sig)
        poly = model.to_polynomial()
        for point, want in table.items():
            env = dict(zip(("x", "y"), point))
            assert poly.evaluate_mod(env, 8) == want
        # the paper's representative F = 1 + 2y + x y^2 has the same form
        reference = to_canonical(
            Polynomial.parse("1 + 2*y + x*y^2").with_vars(("x", "y")), sig
        )
        assert model == reference


class TestRecoveryProperties:
    @settings(max_examples=30, deadline=None)
    @given(polynomials(nvars=2, max_terms=4, max_exp=3, max_coeff=15))
    def test_polynomial_functions_recovered(self, poly):
        """Fitting the function of a polynomial returns its canonical form."""
        def func(x, y):
            return poly.evaluate({"x": x, "y": y})

        model = fit_function(func, TINY)
        assert model == to_canonical(poly, TINY)

    @settings(max_examples=20, deadline=None)
    @given(polynomials(nvars=1, max_terms=4, max_exp=4, max_coeff=15))
    def test_univariate_exhaustive_match(self, poly):
        def func(x):
            return poly.evaluate({"x": x})

        model = model_polynomial(func, UNI)
        exhaustive_match(func, model, UNI)


class TestNonPolynomial:
    def test_non_polynomial_detected_or_mismatched(self):
        # x >> 1 (integer halving) is not a polynomial function mod 2^m.
        def func(x):
            return x >> 1

        try:
            model = model_polynomial(func, UNI)
        except ValueError:
            return  # divisibility criterion fired: fine
        # otherwise the model must fail exhaustive matching somewhere
        mismatch = any(
            model.evaluate_mod({"x": x}, 8) != (x >> 1) % 8 for x in range(8)
        )
        assert mismatch
