"""Tests for the benchmark suite: Table 14.3 characteristics must match."""

import pytest

from repro.suite import (
    TABLE_14_3_SYSTEMS,
    available_systems,
    get_system,
    savitzky_golay_system,
)

# The paper's Table 14.3 columns: (variables, degree, m, #polys)
PAPER_CHARACTERISTICS = {
    "SG 3X2": (2, 2, 16, 9),
    "SG 4X2": (2, 2, 16, 16),
    "SG 4X3": (2, 3, 16, 16),
    "SG 5X2": (2, 2, 16, 25),
    "SG 5X3": (2, 3, 16, 25),
    "Quad": (2, 2, 16, 2),
    "Mibench": (3, 2, 8, 2),
    "MVCS": (2, 3, 16, 1),
}


class TestTable14_3Characteristics:
    @pytest.mark.parametrize("name", TABLE_14_3_SYSTEMS)
    def test_row_matches_paper(self, name):
        system = get_system(name)
        nvars, degree, width, npolys = PAPER_CHARACTERISTICS[name]
        assert len(system.variables) == nvars, name
        assert system.degree == degree, name
        assert system.output_width == width, name
        assert system.num_polys == npolys, name

    @pytest.mark.parametrize("name", TABLE_14_3_SYSTEMS)
    def test_characteristics_string(self, name):
        system = get_system(name)
        nvars, degree, width, _ = PAPER_CHARACTERISTICS[name]
        assert system.characteristics() == f"{nvars}/{degree}/{width}"


class TestRegistry:
    def test_all_names_buildable(self):
        for name in available_systems():
            system = get_system(name)
            assert system.num_polys >= 1

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown system"):
            get_system("SG 9X9")


class TestSavitzkyGolay:
    def test_shifted_copies(self):
        from repro.poly import Polynomial

        system = savitzky_golay_system(3, 2)
        base = system.polys[0]
        # every polynomial is the base with x,y shifted by integers
        shifted = system.polys[4]  # shift (1, 1)
        expected = base.subs(
            {
                "x": Polynomial.variable("x") + 1,
                "y": Polynomial.variable("y") + 1,
            }
        )
        assert shifted == expected

    def test_homogeneous_top_invariant(self):
        # the degree-2 homogeneous part is the same across all shifts
        system = savitzky_golay_system(3, 2)

        def top(poly):
            return {e: c for e, c in poly.terms.items() if sum(e) == 2}

        reference = top(system.polys[0])
        for poly in system.polys[1:]:
            assert top(poly) == reference

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            savitzky_golay_system(1, 2)

    def test_bad_degree_rejected(self):
        with pytest.raises(ValueError):
            savitzky_golay_system(3, 5)
