"""Tests for Taylor Expansion Diagrams."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.poly import Polynomial, parse_polynomial as P, parse_system
from repro.ted import TedManager, ted_node_count, ted_to_expression
from tests.conftest import polynomials


def manager():
    return TedManager(("x", "y", "z"))


class TestConstruction:
    def test_constant_leaf(self):
        m = manager()
        node = m.build(Polynomial.constant(7))
        assert node.is_leaf and node.value == 7

    def test_zero(self):
        m = manager()
        node = m.build(Polynomial.zero(("x",)))
        assert node.is_leaf and node.value == 0

    def test_roundtrip(self):
        m = manager()
        poly = P("x^2*y + 3*x + z + 5")
        assert m.to_polynomial(m.build(poly)) == poly

    def test_variable_outside_order(self):
        m = manager()
        with pytest.raises(KeyError):
            m.build(P("q + 1"))

    @settings(max_examples=50)
    @given(polynomials(max_terms=5, max_exp=3, max_coeff=9))
    def test_roundtrip_random(self, poly):
        m = manager()
        assert m.to_polynomial(m.build(poly)) == poly.trim()


class TestCanonicity:
    def test_equal_polys_same_node(self):
        m = manager()
        assert m.build(P("(x + y)^2")) is m.build(P("x^2 + 2*x*y + y^2"))

    def test_different_polys_different_nodes(self):
        m = manager()
        assert m.build(P("x + y")) is not m.build(P("x - y"))

    @settings(max_examples=40)
    @given(
        polynomials(max_terms=4, max_exp=3, max_coeff=9),
        polynomials(max_terms=4, max_exp=3, max_coeff=9),
    )
    def test_canonicity_matches_equality(self, a, b):
        m = manager()
        assert m.equal(a, b) == (a == b)


class TestSharing:
    def test_shared_subfunction_one_node(self):
        # (x + common) and (x^2 + common) share the sub-diagram of common
        m = manager()
        common = P("y^2 + 3*z")
        left = m.build(P("x") + common)
        right = m.build(P("x^2") + common)
        shared = m.build(common)
        assert shared in left.children or any(
            c is shared for c in left.children
        )
        assert any(c is shared for c in right.children)

    def test_node_count_compresses(self):
        m = manager()
        # y appears under both x^0 and x^1: the diagram shares it.
        node = m.build(P("x*y + y"))
        assert ted_node_count(node) <= 4


class TestLowering:
    def test_decomposition_correct(self):
        m = manager()
        system = parse_system(["x^2*y + x*y + y", "x*y + 5"])
        roots = [m.build(p) for p in system]
        decomposition = ted_to_expression(m, roots)
        decomposition.validate(list(system))

    def test_shared_node_becomes_block(self):
        m = manager()
        common = P("y^2 + 3*y + 1")
        system = parse_system([str(P("x") * common), str(P("x + 1") * common + 2)])
        roots = [m.build(p) for p in system]
        decomposition = ted_to_expression(m, roots)
        decomposition.validate(list(system))
        assert decomposition.blocks, "expected the shared sub-function as a block"

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            polynomials(max_terms=4, max_exp=3, max_coeff=9),
            min_size=1,
            max_size=3,
        )
    )
    def test_lowering_random(self, polys):
        system = Polynomial.unify_all(polys)
        m = manager()
        roots = [m.build(p) for p in system]
        decomposition = ted_to_expression(m, roots)
        decomposition.validate([p.trim() for p in system])
