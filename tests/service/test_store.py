"""Tests for the crash-safe WAL job store (repro.service.store)."""

import json

import pytest

from repro.service import (
    InvalidTransition,
    JobState,
    JobStore,
    LeaseLost,
    UnknownJob,
    load_store,
)

SYSTEM = {"kind": "poly-system", "fake": True}


def submit(store, key="k1", tenant="default", **kwargs):
    record, created = store.submit(
        key=key,
        tenant=tenant,
        method="proposed",
        label=f"label-{key}",
        system=SYSTEM,
        **kwargs,
    )
    return record, created


class TestStateMachine:
    def test_submit_lease_start_complete(self, tmp_path):
        store = JobStore(tmp_path)
        record, created = submit(store)
        assert created and record.state == JobState.QUEUED
        [leased] = store.lease(10, 30.0)
        assert leased.job_id == record.job_id
        assert leased.state == JobState.LEASED
        assert leased.lease_id is not None
        store.start(record.job_id, leased.lease_id)
        assert store.get(record.job_id).state == JobState.RUNNING
        store.complete(
            record.job_id, leased.lease_id, JobState.DONE,
            result="{}", fingerprint="f" * 64,
        )
        done = store.get(record.job_id)
        assert done.state == JobState.DONE
        assert done.terminal
        assert done.attempts == 1
        assert done.lease_id is None

    def test_illegal_transitions_raise(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = submit(store)
        [leased] = store.lease(1, 30.0)
        store.start(record.job_id, leased.lease_id)
        store.complete(record.job_id, leased.lease_id, JobState.DONE)
        with pytest.raises(InvalidTransition):
            store.cancel(record.job_id)

    def test_complete_rejects_non_terminal_target(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = submit(store)
        [leased] = store.lease(1, 30.0)
        with pytest.raises(InvalidTransition):
            store.complete(record.job_id, leased.lease_id, JobState.QUEUED)

    def test_wrong_lease_is_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = submit(store)
        store.lease(1, 30.0)
        with pytest.raises(LeaseLost):
            store.start(record.job_id, "lease-999999")

    def test_unknown_job(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(UnknownJob):
            store.get("j000042-deadbeef")

    def test_cancel_queued(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = submit(store)
        cancelled = store.cancel(record.job_id)
        assert cancelled.state == JobState.CANCELLED
        assert store.lease(10, 30.0) == []


class TestIdempotency:
    def test_duplicate_key_deduplicates(self, tmp_path):
        store = JobStore(tmp_path)
        first, created1 = submit(store, key="same")
        second, created2 = submit(store, key="same")
        assert created1 and not created2
        assert second.job_id == first.job_id
        assert len(store) == 1

    def test_failed_job_allows_resubmit(self, tmp_path):
        store = JobStore(tmp_path)
        first, _ = submit(store, key="same")
        [leased] = store.lease(1, 30.0)
        store.start(first.job_id, leased.lease_id)
        store.complete(
            first.job_id, leased.lease_id, JobState.FAILED, error="boom"
        )
        second, created = submit(store, key="same")
        assert created and second.job_id != first.job_id

    def test_completed_result_lookup(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = submit(store, key="K")
        [leased] = store.lease(1, 30.0)
        store.start(record.job_id, leased.lease_id)
        store.complete(
            record.job_id, leased.lease_id, JobState.DONE,
            result='{"x": 1}', fingerprint="f" * 64,
        )
        donor = store.completed_result_for_key("K")
        assert donor is not None and donor.result == '{"x": 1}'
        assert store.completed_result_for_key("K", exclude=record.job_id) is None


class TestLeasesAndReaper:
    def test_expired_lease_requeues_with_redelivery_count(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = submit(store)
        store.lease(1, lease_seconds=10.0, now=100.0)
        requeued, dead = store.reap_expired(now=105.0)  # not yet expired
        assert requeued == [] and dead == []
        requeued, dead = store.reap_expired(now=111.0)
        assert [r.job_id for r in requeued] == [record.job_id]
        assert store.get(record.job_id).state == JobState.QUEUED
        assert store.get(record.job_id).redeliveries == 1

    def test_heartbeat_extends_the_lease(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = submit(store)
        [leased] = store.lease(1, lease_seconds=10.0, now=100.0)
        store.heartbeat(record.job_id, leased.lease_id, 10.0, now=109.0)
        requeued, _ = store.reap_expired(now=111.0)  # would have expired
        assert requeued == []
        requeued, _ = store.reap_expired(now=120.0)
        assert len(requeued) == 1

    def test_dead_letter_after_redelivery_budget(self, tmp_path):
        store = JobStore(tmp_path, max_redeliveries=2)
        record, _ = submit(store)
        now = 100.0
        for expected in (1, 2):
            store.lease(1, 1.0, now=now)
            requeued, dead = store.reap_expired(now=now + 2.0)
            assert len(requeued) == 1 and dead == []
            assert store.get(record.job_id).redeliveries == expected
            now += 10.0
        store.lease(1, 1.0, now=now)
        requeued, dead = store.reap_expired(now=now + 2.0)
        assert requeued == [] and [d.job_id for d in dead] == [record.job_id]
        final = store.get(record.job_id)
        assert final.state == JobState.DEAD_LETTER
        assert "dead-lettered" in (final.error or "")

    def test_recover_orphans_requeues_running_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = submit(store)
        [leased] = store.lease(1, 3600.0)  # a long, still-live lease
        store.start(record.job_id, leased.lease_id)
        requeued, dead = store.recover_orphans()
        assert [r.job_id for r in requeued] == [record.job_id]
        assert store.get(record.job_id).state == JobState.QUEUED


class TestDurability:
    def test_replay_after_unclean_shutdown(self, tmp_path):
        store = JobStore(tmp_path)
        a, _ = submit(store, key="a")
        b, _ = submit(store, key="b")
        [leased] = store.lease(1, 30.0)
        store.start(a.job_id, leased.lease_id)
        store.complete(
            a.job_id, leased.lease_id, JobState.DONE,
            result='{"r": 1}', fingerprint="a" * 64,
        )
        # No close(): simulate kill -9 by just reopening the directory.
        replayed = JobStore(tmp_path)
        assert len(replayed) == 2
        done = replayed.get(a.job_id)
        assert done.state == JobState.DONE
        assert done.result == '{"r": 1}'
        assert done.fingerprint == "a" * 64
        assert replayed.get(b.job_id).state == JobState.QUEUED

    def test_replay_preserves_job_counter(self, tmp_path):
        store = JobStore(tmp_path)
        a, _ = submit(store, key="a")
        replayed = JobStore(tmp_path)
        b, _ = submit(replayed, key="b")
        assert b.job_id != a.job_id

    def test_torn_tail_is_truncated(self, tmp_path):
        store = JobStore(tmp_path)
        submit(store, key="a")
        submit(store, key="b")
        [wal] = sorted(tmp_path.glob("wal-*.jsonl"))
        with open(wal, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "job-submit", "job": {"trunca')  # no \n
        replayed = JobStore(tmp_path)
        assert len(replayed) == 2
        assert replayed.torn_records >= 1
        # The truncated file must be cleanly line-framed again.
        raw = wal.read_bytes()
        assert raw.endswith(b"\n")

    def test_segment_rotation_and_snapshot(self, tmp_path):
        store = JobStore(tmp_path, segment_records=4)
        for index in range(10):
            record, _ = submit(store, key=f"k{index}")
        assert (tmp_path / "snapshot.json").exists()
        snapshot = json.loads((tmp_path / "snapshot.json").read_text())
        assert snapshot["kind"] == "job-store-snapshot"
        # Only segments newer than the snapshot survive on disk.
        live = sorted(tmp_path.glob("wal-*.jsonl"))
        assert len(live) <= 2
        replayed = JobStore(tmp_path, segment_records=4)
        assert len(replayed) == 10
        assert {r.key for r in replayed.jobs()} == {f"k{i}" for i in range(10)}

    def test_close_compacts(self, tmp_path):
        store = JobStore(tmp_path)
        submit(store, key="a")
        store.close()
        assert (tmp_path / "snapshot.json").exists()
        replayed, summary = load_store(tmp_path)
        assert summary["jobs"] == 1
        assert summary["torn_records"] == 0

    def test_update_replay_is_idempotent(self, tmp_path):
        """Replaying the same segment twice must not change the table:
        WAL records carry absolute state, never increments."""
        store = JobStore(tmp_path)
        record, _ = submit(store)
        store.lease(1, 1.0, now=0.0)
        store.reap_expired(now=2.0)  # redeliveries -> 1, absolute in the WAL
        [wal] = sorted(tmp_path.glob("wal-*.jsonl"))
        lines = wal.read_text(encoding="utf-8")
        with open(wal, "a", encoding="utf-8") as handle:
            handle.write(lines)  # duplicate every record
        replayed = JobStore(tmp_path)
        assert replayed.get(record.job_id).redeliveries == 1

    def test_store_survives_kill_during_compaction_window(self, tmp_path):
        """A snapshot that landed while the covered segments still exist
        (crash between snapshot write and segment deletion) replays to
        the same table."""
        store = JobStore(tmp_path, segment_records=100)
        for index in range(5):
            submit(store, key=f"k{index}")
        store.compact()  # snapshot written, segments rotated
        # Resurrect a covered segment as if deletion had not happened.
        snapshot = json.loads((tmp_path / "snapshot.json").read_text())
        covered = tmp_path / f"wal-{snapshot['segment']:06d}.jsonl"
        covered.write_text(
            json.dumps(
                {"kind": "job-submit", "job": store.get(store.jobs()[0].job_id).as_dict()}
            )
            + "\n",
            encoding="utf-8",
        )
        replayed = JobStore(tmp_path)
        assert len(replayed) == 5


class TestViews:
    def test_public_dict_hides_the_spec(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = submit(store)
        view = record.public_dict()
        for hidden in ("system", "options", "config", "result"):
            assert hidden not in view
        assert view["job_id"] == record.job_id
        assert view["state"] == JobState.QUEUED

    def test_counts_and_depth(self, tmp_path):
        store = JobStore(tmp_path)
        submit(store, key="a", tenant="t1")
        submit(store, key="b", tenant="t2")
        record, _ = submit(store, key="c", tenant="t1")
        store.cancel(record.job_id)
        assert store.counts() == {JobState.QUEUED: 2, JobState.CANCELLED: 1}
        assert store.queued_depth() == 2
        assert store.queued_depth("t1") == 1

    def test_event_tail(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = submit(store)
        for seq in range(5):
            store.record_event(record.job_id, {"seq": seq, "event": "retry"})
        assert len(store.events_for(record.job_id)) == 5
        assert [e["seq"] for e in store.events_for(record.job_id, since_seq=2)] == [3, 4]
        store.record_event("j-unknown", {"seq": 0})  # silently ignored
        assert store.events_for("j-unknown") == []
