"""End-to-end crash recovery: SIGKILL a live ``repro serve`` mid-batch,
restart with ``--resume``, and require every job to reach a terminal
state with fingerprints byte-identical to an uninterrupted baseline.

This is the PR's headline guarantee, so the test runs the real CLI in a
real subprocess and kills it with the one signal that cannot be
handled."""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import repro
from repro.config import RunConfig
from repro.engine import BatchEngine, BatchJob
from repro.serialize import system_to_dict
from repro.service import TERMINAL_STATES, result_fingerprint

from .test_service import tiny_system

N_JOBS = 20


def _env():
    env = os.environ.copy()
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    # Slow each job down so the SIGKILL reliably lands mid-batch.
    env["REPRO_FAULTS"] = "delay@job:*:seconds=0.15"
    return env


def _start_server(data_dir, resume=False):
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--data-dir", str(data_dir),
        "--port", "0",
        "--lease-seconds", "5",
    ]
    if resume:
        cmd.append("--resume")
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_env(),
    )
    base = None
    startup = []
    deadline = time.time() + 30
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        startup.append(line)
        if "listening on " in line:
            base = line.rsplit("listening on ", 1)[1].strip()
            break
    assert base, "server never announced its port"
    return proc, base, "".join(startup)


def _call(base, path, payload=None, timeout=10.0):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base + path,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method="POST" if data is not None else "GET",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read() or b"{}")


def _jobs_by_state(base):
    _, body = _call(base, "/jobs")
    return body["jobs"]


def test_sigkill_resume_is_byte_identical(tmp_path):
    systems = [tiny_system(k) for k in range(1, N_JOBS + 1)]

    # Uninterrupted baseline: the plain engine on identical jobs.  The
    # service records JobResult.canonical_result() verbatim, so its
    # fingerprints must match these exactly.
    engine = BatchEngine(RunConfig())
    baseline_report = engine.run([BatchJob(system=s) for s in systems])
    assert all(r.ok for r in baseline_report.results)
    baseline = {
        s.name: result_fingerprint(r.canonical_result())
        for s, r in zip(systems, baseline_report.results)
    }

    data_dir = tmp_path / "state"
    proc, base, _ = _start_server(data_dir)
    job_ids = {}
    try:
        for system in systems:
            status, body = _call(
                base, "/jobs",
                {"system": system_to_dict(system), "label": system.name},
            )
            assert status == 201, body
            job_ids[body["job"]["job_id"]] = system.name

        # Let a few jobs finish, then SIGKILL mid-batch.
        deadline = time.time() + 60
        while time.time() < deadline:
            done = [
                j for j in _jobs_by_state(base) if j["state"] == "done"
            ]
            if len(done) >= 3:
                break
            time.sleep(0.05)
        assert len(done) >= 3, "no progress before the kill"
        assert len(done) < N_JOBS, "batch finished before the kill landed"
    finally:
        proc.kill()  # SIGKILL: no drain, no flush, no goodbye
        proc.wait(timeout=10)

    proc2, base2, startup2 = _start_server(data_dir, resume=True)
    assert "resume recovered" in startup2
    try:
        deadline = time.time() + 120
        while time.time() < deadline:
            jobs = _jobs_by_state(base2)
            if len(jobs) == N_JOBS and all(
                j["state"] in TERMINAL_STATES for j in jobs
            ):
                break
            time.sleep(0.1)
        jobs = _jobs_by_state(base2)
        assert len(jobs) == N_JOBS
        states = {j["job_id"]: j["state"] for j in jobs}
        assert all(state == "done" for state in states.values()), states

        for job in jobs:
            name = job_ids[job["job_id"]]
            status, body = _call(base2, f"/jobs/{job['job_id']}/result")
            assert status == 200
            assert body["fingerprint"] == baseline[name], (
                f"{name}: resumed fingerprint diverged from the "
                f"uninterrupted baseline"
            )
    finally:
        proc2.send_signal(signal.SIGTERM)
        try:
            proc2.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc2.kill()
            proc2.wait(timeout=10)

    # The graceful shutdown drained and reported.
    output = proc2.stdout.read()
    assert "drained" in output
