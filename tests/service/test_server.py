"""HTTP-level tests for the service front end (ServerThread)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.serialize import system_to_dict
from repro.service import (
    AdmissionController,
    ServerThread,
    ServiceConfig,
    SynthesisService,
    TenantPolicy,
)

from .test_service import tiny_system, wait_terminal


def call(base, path, payload=None, method=None, timeout=10.0):
    """One JSON exchange; returns (status, body, headers)."""
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base + path,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method=method or ("POST" if data is not None else "GET"),
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read() or b"{}"), error.headers


@pytest.fixture
def server(tmp_path):
    service = SynthesisService(
        ServiceConfig(data_dir=str(tmp_path / "svc"), poll_seconds=0.02)
    )
    thread = ServerThread(service).start()
    yield thread
    thread.stop()


class TestEndpoints:
    def test_health_and_ready(self, server):
        assert call(server.address, "/healthz")[0] == 200
        status, body, _ = call(server.address, "/readyz")
        assert status == 200 and body["status"] == "ready"

    def test_submit_poll_result(self, server):
        status, body, _ = call(
            server.address, "/jobs",
            {"system": system_to_dict(tiny_system(11))},
        )
        assert status == 201 and body["created"]
        job_id = body["job"]["job_id"]
        record = wait_terminal(server.service, job_id)
        assert record.state == "done"
        status, body, _ = call(server.address, f"/jobs/{job_id}/result")
        assert status == 200
        assert body["state"] == "done"
        assert body["fingerprint"] == record.fingerprint
        assert body["result"] is not None

    def test_dedup_returns_200(self, server):
        payload = {"system": system_to_dict(tiny_system(12))}
        first = call(server.address, "/jobs", payload)
        second = call(server.address, "/jobs", payload)
        assert first[0] == 201
        assert second[0] == 200 and not second[1]["created"]
        assert second[1]["job"]["job_id"] == first[1]["job"]["job_id"]

    def test_job_view_and_events(self, server):
        status, body, _ = call(
            server.address, "/jobs",
            {"system": system_to_dict(tiny_system(13))},
        )
        job_id = body["job"]["job_id"]
        wait_terminal(server.service, job_id)
        status, body, _ = call(server.address, f"/jobs/{job_id}")
        assert status == 200
        assert body["job"]["state"] == "done"
        assert "system" not in body["job"]  # public view only
        kinds = [e.get("event") for e in body["events"]]
        assert "job_queued" in kinds and "job_end" in kinds
        # Incremental polling: ?since= filters already-seen events.
        last_seq = max(int(e.get("seq", 0)) for e in body["events"])
        _, tail, _ = call(server.address, f"/jobs/{job_id}?since={last_seq}")
        assert tail["events"] == []

    def test_result_of_running_job_conflicts(self, tmp_path):
        service = SynthesisService(
            ServiceConfig(data_dir=str(tmp_path / "svc2"), poll_seconds=0.02)
        )
        thread = ServerThread(service).start()
        try:
            # Submit, then immediately query before the worker finishes:
            # depending on timing the job is queued/leased/running — all
            # non-terminal states must 409.
            status, body, _ = call(
                thread.address, "/jobs",
                {"system": system_to_dict(tiny_system(14))},
            )
            job_id = body["job"]["job_id"]
            status, body, _ = call(thread.address, f"/jobs/{job_id}/result")
            if status == 409:
                assert "not terminal" in body["error"]
            else:  # the tiny job already finished: equally fine
                assert status == 200
        finally:
            thread.stop()

    def test_unknown_job_404(self, server):
        assert call(server.address, "/jobs/j999999-cafecafe")[0] == 404
        assert call(server.address, "/nope")[0] == 404

    def test_bad_json_400(self, server):
        request = urllib.request.Request(
            server.address + "/jobs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_missing_system_400(self, server):
        assert call(server.address, "/jobs", {"method": "proposed"})[0] == 400

    def test_cancel_requires_non_started_job(self, server):
        status, body, _ = call(
            server.address, "/jobs",
            {"system": system_to_dict(tiny_system(15))},
        )
        job_id = body["job"]["job_id"]
        status, body, _ = call(
            server.address, f"/jobs/{job_id}/cancel", {}, method="POST"
        )
        # Either we won the race (cancelled) or the job already ran (409).
        assert status in (200, 409)
        if status == 200:
            assert body["job"]["state"] == "cancelled"


class TestBackpressure:
    def test_rate_limited_submit_gets_429_with_retry_after(self, tmp_path):
        admission = AdmissionController(
            default_policy=TenantPolicy(rate=1.0, burst=1),
            clock=lambda: 0.0,  # frozen: the bucket never refills
        )
        service = SynthesisService(
            ServiceConfig(data_dir=str(tmp_path / "svc3"), poll_seconds=0.02),
            admission=admission,
        )
        thread = ServerThread(service).start()
        try:
            first = call(
                thread.address, "/jobs",
                {"system": system_to_dict(tiny_system(16))},
            )
            assert first[0] == 201
            status, body, headers = call(
                thread.address, "/jobs",
                {"system": system_to_dict(tiny_system(17))},
            )
            assert status == 429
            assert "rate limit" in body["error"]
            assert float(body["retry_after"]) > 0
            assert float(headers["Retry-After"]) > 0
        finally:
            thread.stop()

    def test_draining_server_is_not_ready(self, tmp_path):
        service = SynthesisService(
            ServiceConfig(data_dir=str(tmp_path / "svc4"), poll_seconds=0.02)
        )
        thread = ServerThread(service).start()
        thread.stop()
        assert not service.ready
