"""Tests for admission control (repro.service.admission)."""

import pytest

from repro.config import RunConfig
from repro.core.budget import Budget
from repro.service import (
    AdmissionController,
    TenantPolicy,
    TokenBucket,
    uniform_controller,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()  # burst exhausted
        clock.advance(1.0)
        assert bucket.try_acquire()  # one token refilled
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3, clock=clock)
        clock.advance(100.0)
        for _ in range(3):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_retry_after_is_the_token_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(0.5)
        clock.advance(0.25)
        assert bucket.retry_after() == pytest.approx(0.25)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


class TestAdmissionController:
    def controller(self, clock=None, **kwargs):
        kwargs.setdefault("max_queue_depth", 10)
        kwargs.setdefault(
            "default_policy", TenantPolicy(rate=1.0, burst=2, max_queued=3)
        )
        return AdmissionController(clock=clock or FakeClock(), **kwargs)

    def test_admits_within_all_gates(self):
        decision = self.controller().admit(
            "t", queued_depth=0, tenant_depth=0
        )
        assert decision.allowed

    def test_global_queue_depth_rejects(self):
        decision = self.controller().admit(
            "t", queued_depth=10, tenant_depth=0
        )
        assert not decision.allowed
        assert "queue full" in decision.reason
        assert decision.retry_after > 0

    def test_tenant_queue_depth_rejects(self):
        decision = self.controller().admit(
            "t", queued_depth=5, tenant_depth=3
        )
        assert not decision.allowed
        assert "'t' queue full" in decision.reason

    def test_rate_limit_rejects_with_retry_after(self):
        clock = FakeClock()
        controller = self.controller(clock=clock)
        assert controller.admit("t", queued_depth=0, tenant_depth=0).allowed
        assert controller.admit("t", queued_depth=0, tenant_depth=0).allowed
        decision = controller.admit("t", queued_depth=0, tenant_depth=0)
        assert not decision.allowed
        assert "rate limit" in decision.reason
        assert decision.retry_after == pytest.approx(1.0)
        clock.advance(1.0)
        assert controller.admit("t", queued_depth=0, tenant_depth=0).allowed

    def test_buckets_are_per_tenant(self):
        controller = self.controller()
        for _ in range(2):
            assert controller.admit(
                "a", queued_depth=0, tenant_depth=0
            ).allowed
        assert not controller.admit("a", queued_depth=0, tenant_depth=0).allowed
        assert controller.admit("b", queued_depth=0, tenant_depth=0).allowed

    def test_set_policy_rebuilds_the_bucket(self):
        controller = self.controller()
        controller.set_policy("vip", TenantPolicy(rate=100.0, burst=50))
        for _ in range(50):
            assert controller.admit(
                "vip", queued_depth=0, tenant_depth=0
            ).allowed


class TestBudgetClamp:
    def test_no_caps_passes_config_through(self):
        config = RunConfig(budget=Budget(job_seconds=99.0))
        assert TenantPolicy().clamp(config) is config

    def test_caps_clamp_requested_budget(self):
        policy = TenantPolicy(max_job_seconds=5.0, max_steps=1000)
        clamped = policy.clamp(RunConfig(budget=Budget(job_seconds=99.0)))
        assert clamped.budget.job_seconds == 5.0
        assert clamped.budget.max_steps == 1000

    def test_caps_do_not_raise_a_smaller_request(self):
        policy = TenantPolicy(max_job_seconds=5.0)
        clamped = policy.clamp(RunConfig(budget=Budget(job_seconds=2.0)))
        assert clamped.budget.job_seconds == 2.0

    def test_caps_apply_when_no_budget_requested(self):
        policy = TenantPolicy(max_job_seconds=5.0)
        clamped = policy.clamp(RunConfig())
        assert clamped.budget is not None
        assert clamped.budget.job_seconds == 5.0

    def test_phase_budget_is_preserved(self):
        policy = TenantPolicy(max_job_seconds=5.0)
        clamped = policy.clamp(
            RunConfig(budget=Budget(job_seconds=99.0, phase_seconds=1.5))
        )
        assert clamped.budget.phase_seconds == 1.5


class TestUniformController:
    def test_cli_shape(self):
        controller = uniform_controller(
            rate=2.0,
            burst=4,
            max_queue_depth=100,
            max_queued_per_tenant=7,
            max_job_seconds=12.0,
        )
        policy = controller.policy_for("anyone")
        assert policy.rate == 2.0
        assert policy.burst == 4
        assert policy.max_queued == 7
        assert policy.max_job_seconds == 12.0

    def test_per_tenant_cap_defaults_to_global(self):
        controller = uniform_controller(rate=1.0, burst=1, max_queue_depth=42)
        assert controller.policy_for("t").max_queued == 42
