"""In-process tests for SynthesisService: submit→done, byte-identity,
idempotent reuse, admission rejection, graceful drain."""

import time

import pytest

from repro import BitVectorSignature, PolySystem, parse_system
from repro.config import RunConfig
from repro.engine import BatchEngine, BatchJob
from repro.serialize import system_to_dict
from repro.service import (
    AdmissionRejected,
    JobState,
    ServiceConfig,
    SynthesisService,
    TenantPolicy,
    AdmissionController,
    result_fingerprint,
)


def tiny_system(k: int = 1) -> PolySystem:
    """A one-polynomial system cheap enough for many-job tests."""
    polys = tuple(p.with_vars(("x",)) for p in parse_system([f"x^2 + {k}*x + {k}"]))
    return PolySystem(
        f"tiny-{k}", polys, BitVectorSignature.uniform(("x",), 8)
    )


def make_service(tmp_path, **overrides) -> SynthesisService:
    admission = overrides.pop("admission", None)
    config = ServiceConfig(
        data_dir=str(tmp_path / "svc"),
        poll_seconds=0.02,
        **overrides,
    )
    return SynthesisService(config, admission=admission)


def wait_terminal(service, job_id, timeout=30.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        record = service.store.get(job_id)
        if record.terminal:
            return record
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} not terminal within {timeout}s")


class TestRunToDone:
    def test_submit_runs_to_done_with_fingerprint(self, tmp_path):
        service = make_service(tmp_path)
        service.start()
        try:
            record, created = service.submit(system_to_dict(tiny_system()))
            assert created
            done = wait_terminal(service, record.job_id)
            assert done.state == JobState.DONE
            assert done.result is not None
            assert done.fingerprint == result_fingerprint(done.result)
            assert done.attempts == 1
        finally:
            service.stop()

    def test_fingerprint_matches_direct_engine_run(self, tmp_path):
        """The service's durable result is byte-identical to what a plain
        BatchEngine run produces for the same job."""
        system = tiny_system(7)
        service = make_service(tmp_path)
        service.start()
        try:
            record, _ = service.submit(system_to_dict(system))
            done = wait_terminal(service, record.job_id)
        finally:
            service.stop()
        engine = BatchEngine(RunConfig())
        report = engine.run([BatchJob(system=system)])
        [result] = report.results
        assert result.ok
        assert done.result == result.canonical_result()
        assert done.fingerprint == result_fingerprint(result.canonical_result())

    def test_dedup_returns_existing_job(self, tmp_path):
        service = make_service(tmp_path)
        service.start()
        try:
            first, created1 = service.submit(system_to_dict(tiny_system()))
            second, created2 = service.submit(system_to_dict(tiny_system()))
            assert created1 and not created2
            assert second.job_id == first.job_id
        finally:
            service.stop()

    def test_lifecycle_events_reach_the_job_tail(self, tmp_path):
        service = make_service(tmp_path)
        service.start()
        try:
            record, _ = service.submit(system_to_dict(tiny_system(3)))
            wait_terminal(service, record.job_id)
            kinds = [
                e.get("event")
                for e in service.store.events_for(record.job_id)
            ]
            assert "job_queued" in kinds
            assert "job_leased" in kinds
            assert "job_start" in kinds
            assert "job_end" in kinds
        finally:
            service.stop()


class TestAdmission:
    def test_queue_full_raises_429_material(self, tmp_path):
        service = make_service(tmp_path, max_queue_depth=1)
        # Worker not started: the first job stays queued.
        service.submit(system_to_dict(tiny_system(1)))
        with pytest.raises(AdmissionRejected) as excinfo:
            service.submit(system_to_dict(tiny_system(2)))
        assert "queue full" in excinfo.value.reason
        assert excinfo.value.retry_after > 0
        service.store.close()

    def test_rate_limit_rejects(self, tmp_path):
        frozen = lambda: 0.0  # noqa: E731 - tokens never refill
        admission = AdmissionController(
            default_policy=TenantPolicy(rate=1.0, burst=1),
            clock=frozen,
        )
        service = make_service(tmp_path, admission=admission)
        service.submit(system_to_dict(tiny_system(1)))
        with pytest.raises(AdmissionRejected) as excinfo:
            service.submit(system_to_dict(tiny_system(2)))
        assert "rate limit" in excinfo.value.reason
        service.store.close()

    def test_tenant_budget_cap_is_recorded(self, tmp_path):
        service = make_service(tmp_path, max_job_seconds=5.0)
        record, _ = service.submit(system_to_dict(tiny_system()))
        assert record.config is not None
        assert record.config["budget"]["job_seconds"] == 5.0
        service.store.close()

    def test_unknown_method_rejected(self, tmp_path):
        service = make_service(tmp_path)
        with pytest.raises(ValueError, match="unknown method"):
            service.submit(
                system_to_dict(tiny_system()), method="no-such-method"
            )
        service.store.close()


class TestIdempotentReuse:
    def test_redelivered_twin_reuses_completed_result(self, tmp_path):
        """A leased job whose idempotency key already has a DONE result
        completes by reference instead of re-running the engine."""
        service = make_service(tmp_path)
        store = service.store
        donor, _ = store.submit(
            key="K", tenant="t", method="proposed", label="a",
            system=system_to_dict(tiny_system()),
        )
        [leased] = store.lease(1, 30.0)
        store.start(donor.job_id, leased.lease_id)
        store.complete(
            donor.job_id, leased.lease_id, JobState.DONE,
            result='{"canonical": true}', fingerprint="d" * 64,
        )
        twin, _ = store.submit(
            key="K2", tenant="t", method="proposed", label="b",
            system=system_to_dict(tiny_system()),
        )
        twin.key = "K"  # same content hash as the donor
        leased_twins = store.lease(1, 30.0)
        runnable = service._reuse_idempotent(leased_twins)
        assert runnable == []
        reused = store.get(twin.job_id)
        assert reused.state == JobState.DONE
        assert reused.result == '{"canonical": true}'
        assert reused.reused_from == donor.job_id
        store.close()


class TestDrainAndResume:
    def test_stop_persists_queued_jobs(self, tmp_path):
        service = make_service(tmp_path)
        # Never started: submissions stay queued in the WAL.
        record, _ = service.submit(system_to_dict(tiny_system()))
        service.store.close()
        reopened = make_service(tmp_path)
        assert reopened.store.get(record.job_id).state == JobState.QUEUED
        reopened.store.close()

    def test_resume_requeues_orphans_and_completes(self, tmp_path):
        # Simulate a crashed process: job leased+running, never completed.
        service = make_service(tmp_path)
        record, _ = service.submit(system_to_dict(tiny_system(9)))
        [leased] = service.store.lease(1, 3600.0)
        service.store.start(record.job_id, leased.lease_id)
        service.store._handle.flush()  # the "crash": no close, no compact
        del service

        resumed = make_service(tmp_path)
        resumed.start(resume=True)
        try:
            assert resumed.recovery["requeued"] == 1
            done = wait_terminal(resumed, record.job_id)
            assert done.state == JobState.DONE
            assert done.redeliveries == 1
            assert done.attempts == 2
        finally:
            resumed.stop()

    def test_final_report_covers_executed_jobs(self, tmp_path):
        service = make_service(tmp_path)
        service.start()
        try:
            record, _ = service.submit(system_to_dict(tiny_system(4)))
            wait_terminal(service, record.job_id)
        finally:
            report = service.stop()
        assert len(report.results) == 1
        assert report.results[0].ok
        assert not service.ready  # drained services stop admitting
