"""Tests for the kernel-cube matrix and prime-rectangle extraction."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cse import (
    best_rectangles,
    build_kcm,
    grow_rectangle,
    rectangle_value,
)
from repro.poly import Polynomial, parse_system
from tests.conftest import polynomials


def shifted_system():
    """Three polynomials sharing the quadratic form x^2 - 4xy + 3y^2."""
    return parse_system(
        [
            "x^2 - 4*x*y + 3*y^2 + 12*x + 17",
            "x^2 - 4*x*y + 3*y^2 + 5*y + 2",
            "x^2 - 4*x*y + 3*y^2 + 7*x + 9*y",
        ]
    )


class TestBuild:
    def test_shape(self):
        kcm = build_kcm(shifted_system())
        n_rows, n_cols = kcm.shape
        assert n_rows >= 3 and n_cols >= 3

    def test_incidence_consistent(self):
        kcm = build_kcm(shifted_system())
        for present in kcm.incidence:
            for col in present:
                assert 0 <= col < len(kcm.columns)

    def test_column_sum(self):
        kcm = build_kcm(parse_system(["2*x + 3*y"]))
        total = kcm.column_sum(range(len(kcm.columns)))
        assert total == parse_system(["2*x + 3*y"])[0]

    def test_empty_system(self):
        kcm = build_kcm([])
        assert kcm.shape == (0, 0)


class TestRectangles:
    def test_shared_quadratic_found(self):
        from repro.poly import parse_polynomial as P

        kcm = build_kcm(shifted_system())
        rectangles = best_rectangles(kcm)
        assert rectangles, "expected at least one rectangle"
        bodies = [kcm.column_sum(r.column_indices).trim() for r in rectangles]
        target = P("x^2 - 4*x*y + 3*y^2")
        assert any(target.terms == dict(b.terms) or target == b for b in bodies)

    def test_three_way_rows(self):
        kcm = build_kcm(shifted_system())
        top = best_rectangles(kcm, limit=1)[0]
        assert top.num_rows >= 3

    def test_value_zero_for_degenerate(self):
        kcm = build_kcm(shifted_system())
        assert rectangle_value(kcm, [0], {0, 1}) == 0
        assert rectangle_value(kcm, [0, 1], {0}) == 0

    def test_grow_from_unshared_seed(self):
        kcm = build_kcm(parse_system(["x*a + q", "y*b + r"]))
        # no sharing: every grow attempt fails or values zero
        for seed in range(len(kcm.columns)):
            rectangle = grow_rectangle(kcm, seed)
            assert rectangle is None or rectangle.value == 0 or rectangle.num_rows < 2


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(polynomials(max_terms=4, max_exp=3, max_coeff=9), min_size=1, max_size=3))
    def test_rectangles_are_all_ones(self, polys):
        system = Polynomial.unify_all(polys)
        kcm = build_kcm(system)
        for rectangle in best_rectangles(kcm):
            cols = set(rectangle.column_indices)
            for row in rectangle.row_indices:
                assert cols <= kcm.incidence[row]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(polynomials(max_terms=4, max_exp=3, max_coeff=9), min_size=1, max_size=3))
    def test_rectangle_bodies_are_sub_expressions(self, polys):
        from repro.poly.monomial import mono_mul

        system = Polynomial.unify_all(polys)
        kcm = build_kcm(system)
        for rectangle in best_rectangles(kcm):
            body = kcm.column_sum(rectangle.column_indices)
            for row_index in rectangle.row_indices:
                row = kcm.rows[row_index]
                poly = system[row.poly_index]
                for exps, coeff in body.terms.items():
                    target = mono_mul(row.cokernel, exps)
                    assert poly.terms.get(target) == coeff
