"""Tests for kernel/co-kernel extraction."""

from hypothesis import given, settings

from repro.cse import all_kernels, is_cube_free
from repro.poly import Polynomial, parse_polynomial as P
from repro.poly.monomial import mono_is_one, mono_mul
from tests.conftest import polynomials


class TestDefinitions:
    def test_paper_kernel_example(self):
        # P = 4abc - 3a^2b^2c: kernel 4 - 3ab with co-kernel abc.
        entries = all_kernels(P("4*a*b*c - 3*a^2*b^2*c"))
        assert len(entries) == 1
        entry = entries[0]
        assert entry.kernel == P("4 - 3*a*b")
        # co-kernel abc: exponents (1,1,1) over (a,b,c)
        assert entry.cokernel == (1, 1, 1)

    def test_cube_free(self):
        assert is_cube_free(P("x + y"))
        assert not is_cube_free(P("x^2*y + x*y"))
        assert not is_cube_free(Polynomial.zero(("x",)))

    def test_section_14_4_2_system(self):
        # P1 = x^2 y + xyz -> (xy)(x + z)
        entries = all_kernels(P("x^2*y + x*y*z"))
        kernels = {str(e.kernel) for e in entries}
        assert "x + z" in kernels
        # P2 = a b^2 c^3 + b^2 c^2 x -> (b^2 c^2)(ac + x)
        entries = all_kernels(P("a*b^2*c^3 + b^2*c^2*x"))
        kernels = {str(e.kernel) for e in entries}
        assert "a*c + x" in kernels
        # P3 = axz + x^2 z^2 b -> (xz)(a + xzb)
        entries = all_kernels(P("a*x*z + x^2*z^2*b"))
        kernels = {str(e.kernel) for e in entries}
        assert "b*x*z + a" in kernels

    def test_single_term_has_no_kernels(self):
        assert all_kernels(P("4*x^2*y")) == []

    def test_polynomial_itself_is_kernel_when_cube_free(self):
        entries = all_kernels(P("x + y + 1"))
        assert any(mono_is_one(e.cokernel) and e.kernel == P("x + y + 1") for e in entries)


class TestKernelProperties:
    @settings(max_examples=60)
    @given(polynomials(max_terms=5, max_exp=3))
    def test_kernel_identity(self, poly):
        """Every (co-kernel, kernel) pair satisfies co-kernel * kernel <= poly.

        Each term of cokernel*kernel must appear in the polynomial with the
        same coefficient (kernels are exact sub-structures).
        """
        for entry in all_kernels(poly):
            for exps, coeff in entry.kernel.terms.items():
                target = mono_mul(entry.cokernel, exps)
                assert poly.terms.get(target) == coeff

    @settings(max_examples=60)
    @given(polynomials(max_terms=5, max_exp=3))
    def test_kernels_are_cube_free_multiterm(self, poly):
        for entry in all_kernels(poly):
            assert len(entry.kernel) >= 2
            assert is_cube_free(entry.kernel)

    @settings(max_examples=40)
    @given(polynomials(max_terms=5, max_exp=3))
    def test_no_duplicate_pairs(self, poly):
        seen = set()
        for entry in all_kernels(poly):
            key = (entry.cokernel, frozenset(entry.kernel.terms.items()))
            assert key not in seen
            seen.add(key)
