"""Monotonicity properties of the CSE extraction loop."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cse import eliminate_common_subexpressions
from repro.cse.extract import _poly_weight
from repro.poly import Polynomial
from tests.conftest import polynomials


def system_weight(polys, blocks):
    return sum(_poly_weight(p) for p in polys) + sum(
        _poly_weight(b) for b in blocks.values()
    )


class TestMonotonicity:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(polynomials(max_terms=5, max_exp=3, max_coeff=9), min_size=2, max_size=4)
    )
    def test_extraction_never_increases_weight(self, polys):
        """Each greedy round demands positive gain, so the final rewritten
        system (including block bodies) weighs no more than the input."""
        system = Polynomial.unify_all(polys)
        before = system_weight(system, {})
        result = eliminate_common_subexpressions(system)
        after = system_weight(result.polys, result.blocks)
        assert after <= before

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(polynomials(max_terms=5, max_exp=3, max_coeff=9), min_size=1, max_size=3)
    )
    def test_blocks_always_referenced(self, polys):
        """No extraction leaves an orphan block behind."""
        system = Polynomial.unify_all(polys)
        result = eliminate_common_subexpressions(system)
        for name in result.blocks:
            used_in_output = any(name in p.used_vars() for p in result.polys)
            used_in_block = any(
                name in b.used_vars() for other, b in result.blocks.items() if other != name
            )
            assert used_in_output or used_in_block, f"orphan block {name}"

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(polynomials(max_terms=4, max_exp=3, max_coeff=9), min_size=2, max_size=3)
    )
    def test_determinism(self, polys):
        system = Polynomial.unify_all(polys)
        first = eliminate_common_subexpressions(system)
        second = eliminate_common_subexpressions(system)
        assert first.polys == second.polys
        assert first.blocks == second.blocks
