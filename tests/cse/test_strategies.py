"""Tests for the CSE candidate-class ablation switches."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cse import eliminate_common_subexpressions, expand_blocks
from repro.cse.extract import _poly_weight
from repro.poly import Polynomial, parse_system
from tests.conftest import polynomials


def weight(result):
    return sum(_poly_weight(p) for p in result.polys) + sum(
        _poly_weight(b) for b in result.blocks.values()
    )


class TestSwitches:
    def test_kernels_off_blocks_kernel_sharing(self):
        system = parse_system(["x*a + x*b + q", "y*a + y*b + r"])
        off = eliminate_common_subexpressions(system, enable_kernels=False)
        # the kernel a+b cannot be found; only cube candidates remain
        for block in off.blocks.values():
            assert len(block) == 1  # cubes only

    def test_cubes_off_blocks_cube_sharing(self):
        system = parse_system(["x*y*z + a", "x*y*w + b"])
        off = eliminate_common_subexpressions(system, enable_cubes=False)
        for block in off.blocks.values():
            assert len(block) >= 2  # kernels only

    def test_all_off_is_identity(self):
        system = parse_system(["x*a + x*b", "y*a + y*b"])
        off = eliminate_common_subexpressions(
            system,
            enable_kernels=False,
            enable_cubes=False,
            enable_rectangles=False,
        )
        assert off.polys == system and not off.blocks

    def test_rectangles_widen_three_way_sharing(self):
        # three rows sharing a 3-term body; the pairwise candidates also
        # find it, but the rectangle class must not *hurt* — full >= off
        system = parse_system(
            [
                "x^2 - 4*x*y + 3*y^2 + 12*x",
                "x^2 - 4*x*y + 3*y^2 + 5*y",
                "x^2 - 4*x*y + 3*y^2 + 9",
            ]
        )
        full = eliminate_common_subexpressions(system)
        no_rect = eliminate_common_subexpressions(system, enable_rectangles=False)
        assert weight(full) <= weight(no_rect)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(polynomials(max_terms=4, max_exp=3, max_coeff=9), min_size=2, max_size=3)
    )
    def test_restricted_runs_still_sound(self, polys):
        system = Polynomial.unify_all(polys)
        for kwargs in (
            {"enable_kernels": False},
            {"enable_cubes": False},
            {"enable_rectangles": False},
        ):
            result = eliminate_common_subexpressions(system, **kwargs)
            for original, rewritten in zip(system, result.polys):
                assert expand_blocks(rewritten, result.blocks) == original

    # Greedy extraction is not monotone in the candidate classes for
    # arbitrary random systems (a cube picked early can block a better
    # kernel), so the dominance check runs on curated structured systems
    # where sharing is real; random inputs are covered by the soundness
    # test above.
    def test_full_never_worse_than_restricted(self):
        for rows in (
            ["x*a + x*b + q", "y*a + y*b + r"],
            ["x*y*z + a", "x*y*w + b"],
            ["x^2 - 4*x*y + 3*y^2 + 12*x", "x^2 - 4*x*y + 3*y^2 + 5*y"],
            ["a*x^2 + a*x + a", "b*x^2 + b*x + b", "c*x^2 + c*x"],
        ):
            system = parse_system(rows)
            full = weight(eliminate_common_subexpressions(system))
            for kwargs in ({"enable_kernels": False}, {"enable_cubes": False}):
                restricted = weight(
                    eliminate_common_subexpressions(system, **kwargs)
                )
                assert full <= restricted, (rows, kwargs)