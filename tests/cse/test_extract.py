"""Tests for the greedy multi-polynomial CSE driver."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cse import eliminate_common_subexpressions, expand_blocks
from repro.poly import Polynomial, parse_polynomial as P, parse_system
from tests.conftest import polynomials


def roundtrip_ok(system, result):
    """Substituting blocks back must reproduce the input exactly."""
    for original, rewritten in zip(system, result.polys):
        assert expand_blocks(rewritten, result.blocks) == original


class TestKernelSharing:
    def test_shared_kernel_across_polynomials(self):
        system = parse_system(["x*a + x*b + q", "y*a + y*b + r"])
        result = eliminate_common_subexpressions(system)
        assert len(result.blocks) == 1
        (block,) = result.blocks.values()
        assert block == P("a + b")
        roundtrip_ok(system, result)

    def test_sign_flipped_kernel(self):
        system = parse_system(["3*a - 3*b + q", "5*b - 5*a + r"])
        result = eliminate_common_subexpressions(system)
        roundtrip_ok(system, result)
        if result.blocks:
            (block,) = list(result.blocks.values())[:1]
            assert block in (P("a - b"), P("b - a"), P("3*a - 3*b"), P("5*b - 5*a"))

    def test_coefficient_mismatch_not_shared(self):
        # The [13] limitation the paper fixes with CCE: 4-3ab vs 8-6ab.
        system = parse_system(["4*x + 4*y", "8*x + 8*y"])
        result = eliminate_common_subexpressions(system)
        roundtrip_ok(system, result)
        for block in result.blocks.values():
            # any block extracted must match coefficients exactly
            assert block.max_coeff_magnitude() in (1, 4, 8)

    def test_shared_quadratic_form(self):
        # Shifted-copy structure: identical quadratic part, different tails.
        system = parse_system(
            ["x^2 - 4*x*y + 3*y^2 + 12*x + 17", "x^2 - 4*x*y + 3*y^2 + 5*y + 2"]
        )
        result = eliminate_common_subexpressions(system)
        roundtrip_ok(system, result)
        assert any(
            block == P("x^2 - 4*x*y + 3*y^2") for block in result.blocks.values()
        )


class TestCubeSharing:
    def test_shared_cube(self):
        system = parse_system(["x*y*z + a", "x*y*w + b"])
        result = eliminate_common_subexpressions(system)
        roundtrip_ok(system, result)
        assert any(block == P("x*y") for block in result.blocks.values())

    def test_power_cube(self):
        system = parse_system(["x^2*y^2 + a", "x^2*y^2*z + b"])
        result = eliminate_common_subexpressions(system)
        roundtrip_ok(system, result)

    def test_no_sharing_no_blocks(self):
        system = parse_system(["x + 1", "y + 2"])
        result = eliminate_common_subexpressions(system)
        assert not result.blocks
        roundtrip_ok(system, result)


class TestTermination:
    def test_max_rounds_respected(self):
        system = parse_system(["x*a + x*b", "y*a + y*b", "z*a + z*b"])
        result = eliminate_common_subexpressions(system, max_rounds=1)
        assert result.rounds <= 1
        roundtrip_ok(system, result)

    def test_empty_system(self):
        result = eliminate_common_subexpressions([])
        assert result.polys == [] and not result.blocks


class TestExpandBlocks:
    def test_chained_blocks(self):
        blocks = {
            "_a": P("x + y"),
            "_b": P("_a^2 + 1", variables=("_a",)),
        }
        poly = P("3*_b", variables=("_b",))
        assert expand_blocks(poly, blocks) == P("3*(x+y)^2 + 3")

    def test_no_blocks_is_identity(self):
        assert expand_blocks(P("x + 1"), {}) == P("x + 1")


class TestInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(polynomials(max_terms=5, max_exp=3, max_coeff=9), min_size=1, max_size=4))
    def test_roundtrip_random_systems(self, polys):
        system = Polynomial.unify_all(polys)
        result = eliminate_common_subexpressions(system)
        roundtrip_ok(system, result)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(polynomials(max_terms=4, max_exp=3, max_coeff=9), min_size=2, max_size=3))
    def test_duplicated_polynomial_fully_shared(self, polys):
        # A system containing the same polynomial twice must share it
        # (when it has at least two terms, i.e. something to share).
        base = polys[0]
        if len(base) < 2:
            return
        system = Polynomial.unify_all([base, base])
        result = eliminate_common_subexpressions(system)
        roundtrip_ok(system, result)
        assert result.blocks, f"no sharing found for duplicated {base}"
