"""Tests for canonical-form equivalence checking."""

from hypothesis import given, settings

from repro.poly import parse_polynomial as P, parse_system
from repro.rings import BitVectorSignature
from repro.verify import (
    check_decompositions,
    check_polynomials,
    check_systems,
    find_counterexample,
)
from tests.conftest import polynomials

SIG16 = BitVectorSignature.uniform(("x", "y", "z"), 16)
TINY = BitVectorSignature((("x", 2), ("y", 2)), 4)


class TestPolynomials:
    def test_syntactically_equal(self):
        assert check_polynomials(P("x + y"), P("y + x"), SIG16)

    def test_vanishing_difference_equal(self):
        left = P("x^2", variables=("x", "y"))
        right = left + P("8*x^2 - 8*x", variables=("x", "y"))
        assert check_polynomials(left, right, TINY)

    def test_different_functions(self):
        report = check_polynomials(P("x"), P("x + 1"), SIG16)
        assert not report
        assert report.counterexample is not None
        env = dict(report.counterexample)
        assert P("x").evaluate_mod(env, SIG16.modulus) != P("x + 1").evaluate_mod(
            env, SIG16.modulus
        )

    def test_report_str(self):
        assert str(check_polynomials(P("x"), P("x"), SIG16)) == "equivalent"
        assert "NOT equivalent" in str(check_polynomials(P("x"), P("y"), SIG16))


class TestSystems:
    def test_arity_mismatch(self):
        report = check_systems(parse_system(["x"]), parse_system(["x", "y"]), SIG16)
        assert not report

    def test_first_mismatch_reported(self):
        left = parse_system(["x", "y"])
        right = parse_system(["x", "y + 1"])
        report = check_systems(left, right, SIG16)
        assert report.failing_output == 1


class TestDecompositions:
    def test_synthesized_equivalent_to_direct(self):
        from repro.baselines import direct_decomposition
        from repro.core import synthesize
        from repro.suite import table_14_1_system

        system = table_14_1_system()
        proposed = synthesize(list(system.polys), system.signature).decomposition
        direct = direct_decomposition(list(system.polys))
        assert check_decompositions(proposed, direct, system.signature)

    def test_corrupted_decomposition_caught(self):
        from repro.baselines import direct_decomposition

        system = parse_system(["x + y", "x*y"])
        good = direct_decomposition(system)
        bad = direct_decomposition(parse_system(["x + y", "x*y + 1"]))
        report = check_decompositions(good, bad, SIG16)
        assert not report and report.failing_output == 1


class TestCounterexamples:
    def test_none_for_equal(self):
        assert find_counterexample(P("x"), P("x"), SIG16) is None

    def test_algebraic_witness_small_ring(self):
        # functions equal except on the vanishing structure
        left = P("x^3", variables=("x", "y"))
        right = P("x", variables=("x", "y"))
        # x^3 != x mod 16 at x = 2 (8 vs 2): must find some witness
        witness = find_counterexample(left, right, TINY)
        assert witness is not None
        assert left.evaluate_mod(witness, 16) != right.evaluate_mod(witness, 16)

    @settings(max_examples=30, deadline=None)
    @given(
        polynomials(nvars=2, max_terms=4, max_exp=3, max_coeff=9),
        polynomials(nvars=2, max_terms=4, max_exp=3, max_coeff=9),
    )
    def test_witness_is_sound(self, a, b):
        report = check_polynomials(a, b, TINY)
        if report:
            # claimed equal: exhaustive check over the tiny signature
            for x in range(4):
                for y in range(4):
                    env = {"x": x, "y": y}
                    assert a.evaluate_mod(env, 16) == b.evaluate_mod(env, 16)
        else:
            env = dict(report.counterexample)
            assert a.evaluate_mod(env, 16) != b.evaluate_mod(env, 16)


class TestWitnessDeterminism:
    """The seed parameter is threaded through every ``check_*`` entry point.

    The algebraic candidate walk is seed-independent, so the interesting
    branch is the randomized fallback — exercised here by faking a
    canonical difference whose degree-tuple candidates do *not* witness
    the disagreement, which forces the seeded random search.
    """

    def test_same_inputs_same_witness(self):
        left, right = P("3*x*y + 7", variables=("x", "y")), P("x", variables=("x", "y"))
        witnesses = {
            tuple(sorted(find_counterexample(left, right, SIG16).items()))
            for _ in range(5)
        }
        assert len(witnesses) == 1

    def test_seed_reaches_random_fallback(self, monkeypatch):
        from types import SimpleNamespace

        import repro.verify.equivalence as eq

        # left - right = x: zero at x=0, the only candidate we fabricate,
        # so the algebraic walk fails and the rng fallback must run.
        left, right = P("x"), P("0*x")
        sig = BitVectorSignature.uniform(("x",), 8)
        monkeypatch.setattr(
            eq, "to_canonical",
            lambda poly, signature: SimpleNamespace(coefficients=(((0,), 1),)),
        )
        first = find_counterexample(left, right, sig, seed=123)
        assert first["x"] != 0
        # Deterministic per seed; a different seed draws a different stream.
        assert find_counterexample(left, right, sig, seed=123) == first
        other = find_counterexample(left, right, sig, seed=124)
        assert other["x"] != 0  # still a real witness either way

    def test_seed_threads_through_check_entry_points(self, monkeypatch):
        from types import SimpleNamespace

        import repro.verify.equivalence as eq

        left, right = P("x"), P("0*x")
        sig = BitVectorSignature.uniform(("x",), 8)
        monkeypatch.setattr(
            eq, "to_canonical",
            lambda poly, signature: SimpleNamespace(coefficients=(((0,), 1),)),
        )
        expected = find_counterexample(left, right, sig, seed=99)
        report = check_polynomials(left, right, sig, seed=99)
        assert dict(report.counterexample) == dict(expected)
        report = check_systems([left], [right], sig, seed=99)
        assert dict(report.counterexample) == dict(expected)
