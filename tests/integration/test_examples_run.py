"""Every example script must run cleanly (they are part of the contract)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv: list[str] | None = None):
    saved_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = saved_argv


@pytest.mark.parametrize(
    "name",
    [
        "quickstart.py",
        "finite_ring_canonical.py",
        "automotive_mibench.py",
        "graphics_wavelet.py",
        "rtl_generation.py",
        "equivalence_checking.py",
        "component_modeling.py",
        "tradeoff_exploration.py",
    ],
)
def test_example_runs(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert out.strip(), f"{name} printed nothing"


def test_savitzky_golay_example_small_window(capsys):
    # window 2 keeps the integration test fast
    run_example("savitzky_golay_filter.py", ["2", "2"])
    out = capsys.readouterr().out
    assert "area improvement" in out
