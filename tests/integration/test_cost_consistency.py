"""Consistency between the paper-style op counts and the hardware graphs.

The expression-level MULT/ADD tally and the DFG's operator census measure
the same implementation, so they must agree up to the one divergence that
is *by design*: within-region structural sharing can only make the DFG
cheaper (two textually identical subtrees of one output lower to one
node).  Hence: DFG operators <= expression op count, for every method on
every system.
"""

import pytest

from repro import compare_methods
from repro.dfg import NodeKind, build_dfg
from repro.suite import get_system

SYSTEMS = ("Table 14.1", "Table 14.2", "Quad", "Mibench", "MVCS", "Mixer")


@pytest.mark.parametrize("name", SYSTEMS)
def test_dfg_never_exceeds_op_count(name):
    system = get_system(name)
    outcomes = compare_methods(system)
    for method, outcome in outcomes.items():
        count = outcome.decomposition.op_count()
        graph = build_dfg(outcome.decomposition, system.signature)
        dfg_muls = graph.count(NodeKind.MUL) + graph.count(NodeKind.CMUL)
        dfg_adds = graph.count(NodeKind.ADD) + graph.count(NodeKind.SUB)
        assert dfg_muls <= count.mul, f"{name}/{method}: {dfg_muls} > {count.mul}"
        assert dfg_adds <= count.add + count.mul, (
            # constant folds can shift a paper-MULT into an adder-free wire
            f"{name}/{method}: adds {dfg_adds} vs count {count}"
        )


@pytest.mark.parametrize("name", ("Table 14.1", "Mibench"))
def test_direct_method_counts_match_exactly(name):
    """With no sharing opportunities inside single terms, direct SOP
    lowers to exactly the counted operators (modulo in-region merges)."""
    system = get_system(name)
    outcomes = compare_methods(system, methods=("direct",))
    outcome = outcomes["direct"]
    count = outcome.decomposition.op_count()
    graph = build_dfg(outcome.decomposition, system.signature)
    dfg_muls = graph.count(NodeKind.MUL) + graph.count(NodeKind.CMUL)
    assert dfg_muls <= count.mul
    assert dfg_muls >= count.mul * 0.5  # sharing never halves a direct SOP here
