"""Whole-flow property tests on random systems.

The master invariants of the synthesis flow, checked on generated
workloads rather than the paper's hand-picked ones:

* every decomposition the flow returns is *correct* (validated inside
  ``synthesize``, re-validated here through hardware simulation),
* the flow never loses to the direct implementation,
* planted structure is recovered (a shared linear block hidden behind
  coefficients ends up in the block registry).
"""

import random

import pytest

from repro.core import synthesize
from repro.cost import estimate_decomposition
from repro.baselines import direct_decomposition
from repro.dfg import build_dfg, simulate
from repro.suite import (
    planted_kernel_system,
    random_system,
    shifted_copy_system,
)

SEEDS = (1, 7, 42)


@pytest.mark.parametrize("seed", SEEDS)
def test_random_system_flow_is_sound(seed):
    system = random_system(seed, num_polys=3, max_terms=4, max_degree=3)
    result = synthesize(list(system.polys), system.signature)
    graph = build_dfg(result.decomposition, system.signature)
    rng = random.Random(seed)
    modulus = system.signature.modulus
    for _ in range(10):
        env = {v: rng.randrange(1 << 16) for v in system.variables}
        got = simulate(graph, env)
        want = [p.evaluate_mod(env, modulus) for p in system.polys]
        assert got == want


@pytest.mark.parametrize("seed", SEEDS)
def test_never_worse_than_direct(seed):
    system = random_system(seed + 100, num_polys=3, max_terms=5, max_degree=3)
    result = synthesize(list(system.polys), system.signature)
    proposed = estimate_decomposition(result.decomposition, system.signature)
    direct = estimate_decomposition(
        direct_decomposition(list(system.polys)), system.signature
    )
    assert proposed.area <= direct.area * 1.0001


@pytest.mark.parametrize("seed", SEEDS)
def test_planted_block_recovered(seed):
    system, block = planted_kernel_system(seed, num_polys=3)
    result = synthesize(list(system.polys), system.signature)

    # The flow may legitimately prefer an affine relative of the planted
    # block (e.g. 3L^2 + 6L + 3 = 3(L+1)^2 discovers L+1, not L); accept
    # any block whose non-constant part is proportional to the plant's.
    def linear_part(p):
        stripped = p - p.constant_term
        return stripped.primitive_part().trim()

    target = linear_part(block)
    grounds = result.registry.ground.values()
    assert any(
        g.is_linear and linear_part(g) == target for g in grounds
    ), f"no affine relative of planted block {block} recovered (seed {seed})"


@pytest.mark.parametrize("seed", SEEDS)
def test_shifted_copies_share(seed):
    system = shifted_copy_system(seed, num_polys=4)
    result = synthesize(list(system.polys), system.signature)
    proposed = estimate_decomposition(result.decomposition, system.signature)
    direct = estimate_decomposition(
        direct_decomposition(list(system.polys)), system.signature
    )
    # Shifted copies always allow substantial sharing.
    assert proposed.area < direct.area
