"""Failure injection: every validation layer must catch corrupted results.

A synthesis bug that silently changed a coefficient, dropped a term, or
rewired a block would produce wrong silicon; these tests corrupt correct
decompositions in controlled ways and assert each defence line fires:
symbolic validation, canonical-form equivalence, and bit-accurate
simulation.
"""

import pytest

from repro import synthesize_system
from repro.dfg import build_dfg, simulate
from repro.expr import Decomposition, make_add
from repro.expr.ast import Add
from repro.suite import get_system
from repro.verify import check_decompositions


@pytest.fixture(scope="module")
def golden():
    system = get_system("Table 14.1")
    decomposition = synthesize_system(system).decomposition
    return system, decomposition


def corrupted_copy(decomposition: Decomposition, mode: str) -> Decomposition:
    bad = Decomposition(method="corrupted")
    bad.blocks = dict(decomposition.blocks)
    bad.outputs = list(decomposition.outputs)
    if mode == "output-constant":
        bad.outputs[0] = make_add(bad.outputs[0], 1)
    elif mode == "block-definition":
        name = next(iter(bad.blocks))
        bad.blocks[name] = make_add(bad.blocks[name], 1)
    elif mode == "dropped-output-term":
        target = bad.outputs[-1]
        if isinstance(target, Add) and len(target.operands) > 2:
            bad.outputs[-1] = Add(target.operands[:-1])
        else:
            bad.outputs[-1] = make_add(target, 3)
    else:
        raise ValueError(mode)
    return bad


MODES = ("output-constant", "block-definition", "dropped-output-term")


@pytest.mark.parametrize("mode", MODES)
def test_symbolic_validation_catches(golden, mode):
    system, decomposition = golden
    bad = corrupted_copy(decomposition, mode)
    with pytest.raises(ValueError):
        bad.validate(list(system.polys))


@pytest.mark.parametrize("mode", MODES)
def test_equivalence_checker_catches(golden, mode):
    system, decomposition = golden
    bad = corrupted_copy(decomposition, mode)
    report = check_decompositions(bad, decomposition, system.signature)
    assert not report
    assert report.counterexample is not None


@pytest.mark.parametrize("mode", MODES)
def test_simulation_catches(golden, mode):
    system, decomposition = golden
    bad = corrupted_copy(decomposition, mode)
    good_graph = build_dfg(decomposition, system.signature)
    bad_graph = build_dfg(bad, system.signature)
    diverged = False
    for x in range(4):
        for y in range(4):
            env = {"x": x, "y": y, "z": 1}
            if simulate(good_graph, env) != simulate(bad_graph, env):
                diverged = True
    assert diverged, f"simulation never diverged for {mode}"


def test_uncorrupted_baseline_passes(golden):
    system, decomposition = golden
    decomposition.validate(list(system.polys))
    report = check_decompositions(decomposition, decomposition, system.signature)
    assert report
