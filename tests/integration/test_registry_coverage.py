"""Every registered benchmark system works end-to-end.

One sweep over the registry (the big 16/25-polynomial SG rows run with a
reduced search budget to keep CI fast): synthesis validates, the result
never loses area to the factorization+CSE baseline, and systems survive a
serialization round trip.
"""

import pytest

from repro.baselines import factor_cse_decomposition
from repro.core import SynthesisOptions, synthesize
from repro.cost import estimate_decomposition
from repro.serialize import loads, dumps
from repro.suite import available_systems, get_system

FAST = ("Table 14.1", "Table 14.2", "Section 14.3.1", "Quad", "Mibench", "MVCS", "Mixer", "SG 3X2")


@pytest.mark.parametrize("name", FAST)
def test_registered_system_end_to_end(name):
    system = get_system(name)
    options = SynthesisOptions(descent_budget=40)
    result = synthesize(list(system.polys), system.signature, options)
    proposed = estimate_decomposition(result.decomposition, system.signature)
    baseline = estimate_decomposition(
        factor_cse_decomposition(list(system.polys)), system.signature
    )
    assert proposed.area <= baseline.area * 1.0001, name


def test_every_name_constructs_and_serializes():
    for name in available_systems():
        system = get_system(name)
        assert system.num_polys >= 1
        restored = loads(dumps(system))
        assert restored.polys == system.polys
        assert restored.signature == system.signature
