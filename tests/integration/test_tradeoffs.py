"""Tests for area-delay trade-off exploration."""

import pytest

from repro import explore_tradeoffs
from repro.suite import get_system


@pytest.fixture(scope="module")
def points():
    return explore_tradeoffs(get_system("MVCS"))


class TestExploration:
    def test_all_points_present(self, points):
        labels = {p.label for p in points}
        assert labels == {
            "baseline",
            "proposed/area",
            "proposed/area+balanced",
            "proposed/ops",
        }

    def test_area_objective_wins_area(self, points):
        by_label = {p.label: p for p in points}
        assert by_label["proposed/area"].area <= by_label["baseline"].area

    def test_balanced_lowering_never_slower(self, points):
        by_label = {p.label: p for p in points}
        assert (
            by_label["proposed/area+balanced"].delay
            <= by_label["proposed/area"].delay
        )

    def test_positive_metrics(self, points):
        for point in points:
            assert point.area > 0 and point.delay > 0
            assert point.op_count.mul >= 0
