"""Tests for the one-call public API."""

import pytest

from repro import (
    BitVectorSignature,
    PolySystem,
    compare_methods,
    improvement,
    parse_system,
    synthesize_system,
)


def small_system():
    polys = parse_system(["x^2 + 6*x*y + 9*y^2", "4*x*y^2 + 12*y^3"])
    return PolySystem(
        name="small",
        polys=tuple(polys),
        signature=BitVectorSignature.uniform(("x", "y"), 16),
    )


class TestSynthesizeSystem:
    def test_returns_validated_result(self):
        result = synthesize_system(small_system())
        assert result.op_count.mul <= 7
        expanded = result.decomposition.to_polynomials()
        assert len(expanded) == 2


class TestCompareMethods:
    def test_all_methods_present(self):
        outcomes = compare_methods(small_system())
        assert set(outcomes) == {"direct", "horner", "factor+cse", "proposed"}
        for outcome in outcomes.values():
            assert outcome.hardware.area > 0
            assert outcome.op_count.mul >= 0

    def test_method_subset(self):
        outcomes = compare_methods(small_system(), methods=("direct",))
        assert set(outcomes) == {"direct"}

    def test_proposed_never_worse_in_area(self):
        outcomes = compare_methods(small_system())
        assert (
            outcomes["proposed"].hardware.area
            <= outcomes["factor+cse"].hardware.area * 1.0001
        )

    def test_decompositions_compute_the_system(self):
        system = small_system()
        outcomes = compare_methods(system)
        for outcome in outcomes.values():
            if outcome.method == "proposed":
                continue  # proposed may be modular-equal; validated inside
            outcome.decomposition.validate(list(system.polys))


class TestImprovement:
    def test_positive_when_smaller(self):
        assert improvement(100, 50) == 50.0

    def test_negative_when_larger(self):
        assert improvement(100, 120) == pytest.approx(-20.0)

    def test_zero_base(self):
        assert improvement(0, 10) == 0.0


class TestPolySystem:
    def test_characteristics(self):
        system = small_system()
        assert system.characteristics() == "2/3/16"
        assert "2 polynomial" in str(system)

    def test_polys_unified(self):
        polys = parse_system(["x + 1"]) + parse_system(["y + 1"])
        system = PolySystem(
            name="u",
            polys=tuple(polys),
            signature=BitVectorSignature.uniform(("x", "y"), 8),
        )
        assert system.polys[0].vars == system.polys[1].vars
