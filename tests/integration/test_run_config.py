"""RunConfig: serialization round-trips, coercions, removal of the old
legacy keywords, replace(), and cache byte-identity across budget
changes."""

import pytest

from repro.api import synthesize_system
from repro.config import RetryPolicy, RunConfig, as_run_config
from repro.core import Budget, SynthesisOptions
from repro.engine import BatchEngine, BatchJob
from repro.engine.cache import cache_key
from repro.suite import get_system


class TestRoundTrip:
    def test_default_round_trip(self):
        cfg = RunConfig()
        assert RunConfig.from_dict(cfg.as_dict()) == cfg

    def test_full_round_trip(self):
        cfg = RunConfig(
            options=SynthesisOptions(objective="ops"),
            budget=Budget(job_seconds=30.0, phase_seconds=5.0, max_steps=10_000),
            retry=RetryPolicy(
                max_retries=1, backoff_seconds=0.1, job_timeout_seconds=60.0
            ),
            workers=4,
            cache_size=64,
            cache_dir="/tmp/some-cache",
        )
        assert RunConfig.from_dict(cfg.as_dict()) == cfg

    def test_as_dict_is_json_safe(self, tmp_path):
        import json

        cfg = RunConfig(cache_dir=tmp_path / "cache")
        json.dumps(cfg.as_dict())  # PosixPath must have been stringified

    def test_from_dict_rejects_other_kinds(self):
        with pytest.raises(ValueError):
            RunConfig.from_dict({"kind": "budget"})

    def test_retry_policy_round_trip(self):
        policy = RetryPolicy(max_retries=5, jitter=0.0, breaker_threshold=7)
        assert RetryPolicy.from_dict(policy.as_dict()) == policy


class TestCoercion:
    def test_none_means_defaults(self):
        assert as_run_config(None) == RunConfig()

    def test_run_config_passes_through(self):
        cfg = RunConfig(workers=3)
        assert as_run_config(cfg) is cfg

    def test_options_are_wrapped(self):
        options = SynthesisOptions(objective="ops")
        cfg = as_run_config(options)
        assert cfg.options is options
        assert cfg.budget is None

    def test_dict_is_decoded(self):
        cfg = as_run_config(RunConfig(workers=2).as_dict())
        assert cfg.workers == 2

    def test_everything_else_is_a_type_error(self):
        with pytest.raises(TypeError):
            as_run_config(42)


class TestBackoff:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy(backoff_seconds=0.1, backoff_factor=2.0, jitter=0.25)
        assert policy.delay(1, "job") == policy.delay(1, "job")

    def test_delay_grows_exponentially(self):
        policy = RetryPolicy(backoff_seconds=0.1, backoff_factor=2.0, jitter=0.0)
        assert policy.delay(2, "x") == pytest.approx(2.0 * policy.delay(1, "x"))

    def test_jitter_is_bounded_and_decorrelated(self):
        policy = RetryPolicy(backoff_seconds=0.1, backoff_factor=1.0, jitter=0.5)
        delays = {policy.delay(1, f"job-{i}") for i in range(16)}
        assert len(delays) > 1  # different jobs, different jitter
        for delay in delays:
            assert 0.1 <= delay <= 0.1 * 1.5


class TestLegacyRemoval:
    """The pre-PR-4 shims finished their one-release window: passing the
    old scattered keywords is now a hard TypeError, not a warning."""

    def test_positional_worker_count_rejected(self):
        with pytest.raises(TypeError):
            BatchEngine(2)

    def test_legacy_keywords_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            BatchEngine(workers=2, cache_dir=tmp_path)

    def test_legacy_keywords_rejected_alongside_config(self):
        with pytest.raises(TypeError):
            BatchEngine(RunConfig(workers=1), workers=3)

    def test_synthesize_system_options_keyword_rejected(self):
        system = get_system("Quad")
        with pytest.raises(TypeError):
            synthesize_system(system, options=SynthesisOptions())


class TestReplace:
    def test_replace_overrides_one_field(self):
        cfg = RunConfig(workers=4).replace(cache_size=64)
        assert cfg.workers == 4
        assert cfg.cache_size == 64

    def test_replace_returns_new_frozen_copy(self):
        base = RunConfig()
        derived = base.replace(workers=2)
        assert base.workers == 1
        assert derived.workers == 2
        assert derived != base

    def test_replace_rejects_unknown_fields(self):
        with pytest.raises(TypeError, match="no field"):
            RunConfig().replace(worker_count=2)


class TestCacheIdentity:
    """Budgets are policy, not content: they stay out of the cache key,
    and changing them must not invalidate (or corrupt) cached results."""

    def test_budget_does_not_change_the_cache_key(self):
        system = get_system("Quad")
        lean = BatchEngine(RunConfig())
        fat = BatchEngine(RunConfig(budget=Budget(job_seconds=3600.0)))
        key = cache_key(system, lean.config.options, "proposed")
        assert cache_key(system, fat.config.options, "proposed") == key

    def test_warm_disk_cache_across_budget_change(self, tmp_path):
        system = get_system("Quad")
        first = BatchEngine(RunConfig(cache_dir=tmp_path))
        report = first.run([BatchJob(system=system)])
        assert report.cache_misses == 1
        second = BatchEngine(
            RunConfig(cache_dir=tmp_path, budget=Budget(job_seconds=3600.0))
        )
        warm = second.run([BatchJob(system=system)])
        assert warm.cache_hits == 1
        assert (
            warm.results[0].canonical_result()
            == report.results[0].canonical_result()
        )

    def test_config_round_trips_through_pool_workers(self):
        jobs = [
            BatchJob(system=get_system("Quad")),
            BatchJob(system=get_system("MVCS")),
        ]
        config = RunConfig(budget=Budget(job_seconds=3600.0, max_steps=10**9))
        serial = BatchEngine(config).run(jobs)
        pooled = BatchEngine(RunConfig(
            workers=2, budget=Budget(job_seconds=3600.0, max_steps=10**9)
        )).run(jobs)
        assert pooled.pool.mode == "pool"
        for a, b in zip(serial.results, pooled.results):
            assert not a.degraded and not b.degraded
            assert a.canonical_result() == b.canonical_result()

    def test_engine_options_materialize_without_changing_keys(self):
        # A job without options gets the engine-wide options; the cache
        # key must equal the explicit-default-options key.
        system = get_system("Quad")
        engine = BatchEngine(RunConfig())
        report = engine.run([BatchJob(system=system)])
        assert report.results[0].cache_key == cache_key(
            system, SynthesisOptions(), "proposed"
        )
