"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestSynthesize:
    def test_motivating_system(self, capsys):
        code = main(
            ["synthesize", "x^2 + 6*x*y + 9*y^2", "4*x*y^2 + 12*y^3", "--width", "16"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "final cost" in out and "hardware:" in out

    def test_named_system(self, capsys):
        assert main(["synthesize", "--system", "Table 14.1"]) == 0
        assert "cost" in capsys.readouterr().out

    def test_missing_input(self, capsys):
        assert main(["synthesize"]) == 2
        assert "error" in capsys.readouterr().err


class TestCompare:
    def test_compare_named(self, capsys):
        assert main(["compare", "--system", "MVCS"]) == 0
        out = capsys.readouterr().out
        assert "proposed" in out and "area improvement" in out


class TestCanonFactor:
    def test_canon(self, capsys):
        assert main(["canon", "x^2 - x", "--width", "16"]) == 0
        assert "Y2(x)" in capsys.readouterr().out

    def test_factor(self, capsys):
        assert main(["factor", "x^6 - 9*x^4 + 24*x^2 - 16"]) == 0
        out = capsys.readouterr().out
        assert "(x + 2)^2" in out


class TestVerilog:
    def test_emits_module(self, capsys):
        code = main(
            ["verilog", "x^2 + 6*x*y + 9*y^2", "--module", "filter", "--width", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("module filter(") and "endmodule" in out

    def test_emits_testbench(self, capsys):
        code = main(
            ["verilog", "x*y + 1", "--module", "mac", "--width", "8", "--testbench"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "module mac(" in out and "module mac_tb;" in out


class TestCheck:
    def test_equivalent(self, capsys):
        code = main(["check", "x + y", "y + x"])
        assert code == 0
        assert "equivalent" in capsys.readouterr().out

    def test_not_equivalent_exit_code(self, capsys):
        code = main(["check", "x", "x + 1"])
        assert code == 1
        assert "NOT equivalent" in capsys.readouterr().out

    def test_vanishing_pair(self, capsys):
        code = main(["check", "x^2", "x^2 + 8*x^2 - 8*x", "--width", "3"])
        assert code == 0


class TestSystems:
    def test_listing(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        assert "SG 3X2" in out and "MVCS" in out


class TestMethods:
    def test_listing(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        assert "direct" in out and "proposed" in out


class TestBatch:
    def test_single_system_prints_phase_timings(self, capsys):
        code = main(["batch", "--systems", "Table 14.1", "--workers", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cache:" in out and "phase seconds" in out
        assert "search" in out and "Table 14.1" in out

    def test_repeat_reports_warm_hits(self, capsys):
        code = main(
            ["batch", "--systems", "Table 14.1", "--repeat", "2"]
        )
        assert code == 0
        assert "100% hit rate" in capsys.readouterr().out

    def test_unknown_method_errors(self, capsys):
        code = main(["batch", "--systems", "Table 14.1", "--method", "nope"])
        assert code == 2
        assert "unknown method" in capsys.readouterr().err

    def test_disk_cache_dir(self, tmp_path, capsys):
        args = [
            "batch", "--systems", "Table 14.1", "--cache-dir", str(tmp_path)
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0  # fresh engine, warm disk
        assert "100% hit rate" in capsys.readouterr().out


class TestParser:
    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_governance_flags_shared_across_subcommands(self):
        # The shared parent parser gives every synthesis command the same
        # governance flags, including --config.
        from repro.__main__ import build_parser

        parser = build_parser()
        for command in ("synthesize", "compare", "verilog", "trace", "batch", "fuzz"):
            args = parser.parse_args([command, "--job-seconds", "5", "--config", "c.json"])
            assert args.job_seconds == 5.0
            assert args.config == "c.json"


class TestConfigFile:
    def _write_config(self, tmp_path, **kwargs):
        import json

        from repro.config import RunConfig

        path = tmp_path / "run.json"
        path.write_text(json.dumps(RunConfig(**kwargs).as_dict()))
        return str(path)

    def test_config_file_seeds_run_config(self, tmp_path):
        from repro.__main__ import build_parser, run_config_from_args
        from repro.core import Budget

        path = self._write_config(
            tmp_path, budget=Budget(job_seconds=42.0), workers=2
        )
        args = build_parser().parse_args(["synthesize", "x", "--config", path])
        cfg = run_config_from_args(args)
        assert cfg.budget == Budget(job_seconds=42.0)
        assert cfg.workers == 2

    def test_explicit_flags_override_config_file(self, tmp_path):
        from repro.__main__ import build_parser, run_config_from_args

        path = self._write_config(tmp_path, workers=2)
        args = build_parser().parse_args(
            ["batch", "--config", path, "--workers", "3", "--job-seconds", "9"]
        )
        cfg = run_config_from_args(args)
        assert cfg.workers == 3
        assert cfg.budget is not None and cfg.budget.job_seconds == 9.0

    def test_synthesize_runs_with_config_file(self, tmp_path, capsys):
        path = self._write_config(tmp_path)
        assert main(["synthesize", "x^2 + 2*x*y + y^2", "--config", path]) == 0
        assert "final cost" in capsys.readouterr().out
