"""End-to-end hardware equivalence: every method's DFG computes the system.

For each benchmark system and each synthesis method, lower the
decomposition to a dataflow graph and simulate it at random input
vectors; the results must equal the original polynomials evaluated
mod 2^m.  This is the closest software analogue of gate-level
equivalence checking the paper's flow would undergo.
"""

import random

import pytest

from repro import compare_methods
from repro.dfg import build_dfg, simulate
from repro.suite import get_system

SYSTEMS = ("Table 14.1", "Quad", "Mibench", "MVCS")
METHODS = ("direct", "horner", "factor+cse", "proposed")


@pytest.mark.parametrize("name", SYSTEMS)
def test_all_methods_bitwise_equivalent(name):
    system = get_system(name)
    outcomes = compare_methods(system)
    modulus = system.signature.modulus
    rng = random.Random(hash(name) & 0xFFFF)
    vectors = [
        {var: rng.randrange(1 << system.signature.width_of(var))
         for var in system.variables}
        for _ in range(25)
    ]
    expected = [
        [poly.evaluate_mod(env, modulus) for poly in system.polys]
        for env in vectors
    ]
    for method in METHODS:
        graph = build_dfg(outcomes[method].decomposition, system.signature)
        for env, want in zip(vectors, expected):
            got = simulate(graph, env)
            assert got == want, f"{name}/{method} diverges at {env}"
