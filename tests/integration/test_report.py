"""Tests for comparison reports and the mixed-width suite system."""

from repro import compare_methods
from repro.report import comparison_rows, markdown_report, text_report
from repro.suite import get_system, mixer_system


class TestMixerSystem:
    def test_heterogeneous_signature(self):
        system = mixer_system()
        assert system.signature.width_of("g") == 8
        assert system.signature.width_of("p") == 4
        assert system.signature.width_of("s") == 16
        assert system.output_width == 16

    def test_registered(self):
        assert get_system("Mixer").name == "Mixer"

    def test_flow_handles_mixed_widths(self):
        from repro import synthesize_system

        system = mixer_system()
        result = synthesize_system(system)
        # shared (g+p)-square structure behind coefficients 3 vs 5
        assert result.op_count.weighted() <= result.initial_op_count.weighted()

    def test_width_aware_area(self):
        """Narrow operands must make narrow (cheaper) multipliers."""
        from repro.cost import estimate_decomposition
        from repro.baselines import direct_decomposition
        from repro.rings import BitVectorSignature
        
        system = mixer_system()
        narrow = estimate_decomposition(
            direct_decomposition(list(system.polys)), system.signature
        )
        wide = estimate_decomposition(
            direct_decomposition(list(system.polys)),
            BitVectorSignature.uniform(system.variables, 16),
        )
        assert narrow.area < wide.area


class TestReports:
    def setup_method(self):
        self.system = get_system("Table 14.1")
        self.outcomes = compare_methods(self.system)

    def test_rows_ordered(self):
        rows = comparison_rows(self.outcomes)
        methods = [row[0] for row in rows]
        assert methods == ["direct", "horner", "factor+cse", "proposed"]

    def test_text_report(self):
        text = text_report(self.system, self.outcomes)
        assert "Table 14.1" in text
        assert "proposed" in text
        assert "area improvement over factorization+CSE" in text

    def test_markdown_report(self):
        md = markdown_report(self.system, self.outcomes)
        assert md.startswith("### Table 14.1")
        assert "| method | MULT | ADD |" in md
        assert md.count("|") > 20

    def test_cli_markdown(self, capsys):
        from repro.__main__ import main

        assert main(["compare", "--system", "MVCS", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("### MVCS")
