"""Round-trip tests for JSON serialization."""

import pytest
from hypothesis import given, settings

from repro.expr.ast import BlockRef
from repro.serialize import (
    decomposition_from_dict,
    decomposition_to_dict,
    dumps,
    loads,
    polynomial_from_dict,
    polynomial_to_dict,
    system_from_dict,
    system_to_dict,
)
from repro.suite import get_system
from tests.conftest import polynomials


class TestPolynomials:
    @settings(max_examples=40)
    @given(polynomials())
    def test_roundtrip(self, poly):
        assert polynomial_from_dict(polynomial_to_dict(poly)) == poly

    @settings(max_examples=20)
    @given(polynomials())
    def test_string_roundtrip(self, poly):
        assert loads(dumps(poly)) == poly

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError):
            polynomial_from_dict({"kind": "system"})


class TestSystems:
    @pytest.mark.parametrize("name", ("Table 14.1", "Mixer", "MVCS"))
    def test_roundtrip(self, name):
        system = get_system(name)
        restored = system_from_dict(system_to_dict(system))
        assert restored.name == system.name
        assert restored.polys == system.polys
        assert restored.signature == system.signature

    def test_string_roundtrip(self):
        system = get_system("Quad")
        restored = loads(dumps(system))
        assert restored.polys == system.polys


class TestDecompositions:
    def _decomposition(self):
        from repro import synthesize_system

        system = get_system("Table 14.1")
        return system, synthesize_system(system).decomposition

    def test_roundtrip_preserves_semantics(self):
        system, decomposition = self._decomposition()
        restored = decomposition_from_dict(decomposition_to_dict(decomposition))
        assert restored.to_polynomials() == decomposition.to_polynomials()
        assert restored.op_count() == decomposition.op_count()
        assert restored.method == decomposition.method

    def test_cyclic_payload_rejected(self):
        payload = {
            "kind": "decomposition",
            "method": "bad",
            "blocks": {
                "a": {"op": "block", "name": "b"},
                "b": {"op": "block", "name": "a"},
            },
            "outputs": [{"op": "block", "name": "a"}],
        }
        with pytest.raises(ValueError):
            decomposition_from_dict(payload)

    def test_dangling_reference_rejected(self):
        payload = {
            "kind": "decomposition",
            "method": "bad",
            "blocks": {},
            "outputs": [{"op": "block", "name": "ghost"}],
        }
        with pytest.raises(KeyError):
            decomposition_from_dict(payload)


class TestDispatch:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            loads('{"kind": "mystery"}')

    def test_unserializable_type(self):
        with pytest.raises(TypeError):
            dumps(object())

    def test_blockref_expr_roundtrip(self):
        from repro.serialize import expr_from_dict, expr_to_dict

        expr = BlockRef("d1")
        assert expr_from_dict(expr_to_dict(expr)) == expr


class TestMetricsPayloads:
    def test_op_count_roundtrip(self):
        from repro.expr import OpCount
        from repro.serialize import op_count_from_dict, op_count_to_dict

        count = OpCount(mul=7, add=3, const_mul=2)
        assert op_count_from_dict(op_count_to_dict(count)) == count
        assert loads(dumps(count)) == count

    def test_timings_roundtrip(self):
        from repro.core import Timings

        timings = Timings()
        timings.record("search", 0.25, combinations=42)
        timings.record("validate", 0.01)
        restored = loads(dumps(timings))
        assert [p.phase for p in restored.phases] == ["search", "validate"]
        assert restored.phases[0].counters == {"combinations": 42}
        assert restored.total_seconds() == pytest.approx(0.26)

    def test_timings_wrong_kind_rejected(self):
        from repro.core import Timings

        with pytest.raises(ValueError):
            Timings.from_dict({"kind": "polynomial", "phases": []})
