"""End-to-end reproduction of every in-text result of the paper."""

from repro.baselines import (
    direct_decomposition,
    factor_cse_decomposition,
    horner_baseline,
)
from repro.core import synthesize
from repro.poly import parse_polynomial as P
from repro.rings import to_canonical
from repro.suite import (
    section_14_3_1_system,
    table_14_1_system,
    table_14_2_system,
)


class TestTable14_1Exact:
    """Every row of Table 14.1, as operator counts."""

    def setup_method(self):
        self.system = table_14_1_system()
        self.polys = list(self.system.polys)

    def test_direct_row(self):
        count = direct_decomposition(self.polys).op_count()
        assert (count.mul, count.add) == (17, 4)

    def test_horner_row(self):
        count = horner_baseline(self.polys, mode="univariate", var="x").op_count()
        assert (count.mul, count.add) == (15, 4)

    def test_factoring_cse_row(self):
        count = factor_cse_decomposition(self.polys).op_count()
        assert count.mul <= 12 and count.add <= 4

    def test_proposed_row(self):
        result = synthesize(self.polys, self.system.signature)
        assert result.op_count.mul <= 8
        assert result.op_count.add <= 2
        assert P("x + 3*y") in set(result.registry.ground.values())


class TestTable14_2Exact:
    def test_initial_and_final_cost(self):
        system = table_14_2_system()
        result = synthesize(list(system.polys), system.signature)
        assert (result.initial_op_count.mul, result.initial_op_count.add) == (51, 21)
        assert result.op_count.mul <= 14 and result.op_count.add <= 14

    def test_paper_blocks_found(self):
        system = table_14_2_system()
        result = synthesize(list(system.polys), system.signature)
        grounds = set(result.registry.ground.values())
        assert P("x + y") in grounds
        assert P("x - y") in grounds


class TestSection14_3_1Exact:
    def test_canonical_coefficients(self):
        system = section_14_3_1_system()
        cf = to_canonical(system.polys[0], system.signature)
        cg = to_canonical(system.polys[1], system.signature)
        assert dict(cf.coefficients) == {(2, 2, 0): 4, (1, 0, 2): 5}
        assert dict(cg.coefficients) == {(2, 0, 2): 7, (1, 2, 0): 3}


class TestSection14_4Examples:
    def test_cce_running_example(self):
        """8x+16y+24z+15a+30b+11 -> 8(x+2y+3z) + 15(a+2b) + 11."""
        from repro.core import BlockRegistry, common_coefficient_extraction

        poly = P("8*x + 16*y + 24*z + 15*a + 30*b + 11")
        registry = BlockRegistry(poly.vars)
        outcome = common_coefficient_extraction(poly, registry)
        assert outcome is not None
        blocks = {registry.ground[name] for name in outcome.extracted}
        assert blocks == {P("x + 2*y + 3*z"), P("a + 2*b")}

    def test_division_example(self):
        """Section 14.4.3: (x+3y) divides all three motivating polynomials."""
        from repro.poly import divides

        divisor = P("x + 3*y")
        for text in ("x^2 + 6*x*y + 9*y^2", "4*x*y^2 + 12*y^3", "2*x^2*z + 6*x*y*z"):
            assert divides(divisor, P(text))

    def test_kernel_limitations_example(self):
        """Section 14.2.1: kernel factoring can't see 5(x^2+2y^3+3pq)."""
        from repro.cse import all_kernels

        poly = P("5*x^2 + 10*y^3 + 15*p*q")
        # no kernel exposes the coefficient structure: the factored body
        # x^2 + 2y^3 + 3pq never appears among the kernels
        target = P("x^2 + 2*y^3 + 3*p*q")
        for entry in all_kernels(poly):
            assert entry.kernel != target
        # but CCE does
        from repro.core import BlockRegistry, common_coefficient_extraction

        registry = BlockRegistry(poly.vars)
        outcome = common_coefficient_extraction(poly, registry)
        assert outcome is not None
        assert registry.ground[outcome.extracted[0]] == P("x^2 + 2*y^3 + 3*p*q")
