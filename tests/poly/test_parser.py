"""Unit tests for the polynomial parser."""

import pytest

from repro.poly import Polynomial, PolynomialSyntaxError, parse_polynomial as P, parse_system


class TestBasicSyntax:
    def test_constant(self):
        assert P("42") == 42

    def test_variable(self):
        assert P("x") == Polynomial.variable("x")

    def test_sum_and_difference(self):
        assert P("x + y - 3") == Polynomial.variable("x", ("x", "y")) + Polynomial.variable(
            "y", ("x", "y")
        ) - 3

    def test_explicit_product(self):
        assert P("4*x*y") == 4 * P("x") * P("y")

    def test_caret_and_double_star_powers(self):
        assert P("x^3") == P("x**3")

    def test_leading_minus(self):
        assert P("-x + 2") == 2 - P("x")

    def test_double_negation(self):
        assert P("--x") == P("x")

    def test_parentheses(self):
        assert P("(x + y)^2") == P("x^2 + 2*x*y + y^2")

    def test_nested_parens(self):
        assert P("((x))") == P("x")


class TestImplicitMultiplication:
    def test_number_times_name(self):
        assert P("5x") == 5 * P("x")

    def test_name_times_paren(self):
        assert P("x(x - 1)") == P("x^2 - x")

    def test_paren_times_paren(self):
        assert P("(x + 1)(x - 1)") == P("x^2 - 1")

    def test_paper_falling_factorial_syntax(self):
        p = P("5x(x-1)(x-2)y(y-1) + 3z^2")
        assert p.degree("x") == 3 and p.degree("y") == 2 and p.degree("z") == 2

    def test_multichar_name_is_one_variable(self):
        p = P("4xy^2")
        assert p.used_vars() == ("xy",)

    def test_single_letter_mode_splits(self):
        p = P("4xy^2", single_letter_vars=True)
        assert p == P("4*x*y^2")

    def test_single_letter_mode_rejects_digits_in_names(self):
        with pytest.raises(PolynomialSyntaxError):
            P("4x1y", single_letter_vars=True)


class TestVariableControl:
    def test_explicit_variable_tuple(self):
        p = P("x + 1", variables=("x", "y", "z"))
        assert p.vars == ("x", "y", "z")

    def test_foreign_variable_rejected(self):
        with pytest.raises(PolynomialSyntaxError):
            P("w + 1", variables=("x", "y"))

    def test_default_vars_sorted(self):
        assert P("z + a + m").vars == ("a", "m", "z")


class TestErrors:
    def test_unbalanced_paren(self):
        with pytest.raises(PolynomialSyntaxError):
            P("(x + 1")

    def test_trailing_garbage(self):
        with pytest.raises(PolynomialSyntaxError):
            P("x + 1)")

    def test_bad_character(self):
        with pytest.raises(PolynomialSyntaxError):
            P("x / y")

    def test_non_integer_exponent(self):
        with pytest.raises(PolynomialSyntaxError):
            P("x^y")

    def test_empty_input(self):
        with pytest.raises(PolynomialSyntaxError):
            P("")


class TestParseSystem:
    def test_common_variable_tuple(self):
        polys = parse_system(["x + 1", "y + 2", "z"])
        assert all(p.vars == ("x", "y", "z") for p in polys)

    def test_paper_motivating_system(self):
        p1, p2, p3 = parse_system(
            ["x^2 + 6*x*y + 9*y^2", "4*x*y^2 + 12*y^3", "2*x^2*z + 6*x*y*z"]
        )
        assert p1 == P("(x + 3*y)^2")
        assert p2 == 4 * P("y") ** 2 * P("x + 3*y")
        assert p3 == 2 * P("x") * P("z") * P("x + 3*y")
