"""Differential property tests: packed monomials agree with tuples.

The packed fast path (:mod:`repro.poly.packed`) re-implements monomial
multiplication, divisibility, grevlex comparison, and exponent GCD as
plain integer arithmetic.  A silent field overflow or an off-by-one in
the guard-bit trick would not crash — it would alias distinct monomials
and quietly change division results downstream.  So every packed
operation is pinned against the reference ``mono_*`` tuple
implementation over hypothesis-generated exponent tuples, and the two
whole-polynomial entry points (``divmod_poly``, ``divide_out_all``) are
checked packed-vs-tuple for exact result identity, including term
order.
"""

from __future__ import annotations

import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.poly import Polynomial
from repro.poly.division import divide_out_all, divmod_poly
from repro.poly.monomial import (
    mono_degree,
    mono_div,
    mono_divides,
    mono_gcd,
    mono_mul,
)
from repro.poly.orderings import grevlex_key
from repro.poly.packed import (
    PackedContext,
    PackedPoly,
    clear_packed_context_cache,
    packed_context_cache_size,
    packed_form,
    set_packed_enabled,
)

# Exponent tuples: 1..6 variables, entries small enough that products of
# two monomials stay inside a product-sized context.
NVARS = st.shared(st.integers(min_value=1, max_value=6), key="nvars")


def exponents(max_exp: int = 9):
    return NVARS.flatmap(
        lambda n: st.tuples(
            *[st.integers(min_value=0, max_value=max_exp)] * n
        )
    )


def _product_context(*tuples):
    """Context sized the way the CSE port sizes them: product bound."""
    nvars = len(tuples[0])
    bound = max(sum(t) for t in tuples)
    ctx = PackedContext.for_degrees(nvars, bound, bound)
    assert ctx is not None
    return ctx


class TestPackedMonomialOps:
    @given(exponents())
    def test_pack_unpack_roundtrip(self, exps):
        ctx = _product_context(exps)
        assert ctx.unpack(ctx.pack(exps)) == exps

    @given(exponents(), exponents())
    def test_mul_matches_mono_mul(self, a, b):
        ctx = _product_context(a, b)
        product = ctx.mul(ctx.pack(a), ctx.pack(b))
        assert ctx.unpack(product) == mono_mul(a, b)
        assert ctx.degree_of(product) == mono_degree(mono_mul(a, b))

    @given(exponents(), exponents())
    def test_divides_matches_mono_divides(self, a, b):
        ctx = _product_context(a, b)
        assert ctx.divides(ctx.pack(b), ctx.pack(a)) == mono_divides(b, a)

    @given(exponents(), exponents())
    def test_div_matches_mono_div(self, a, b):
        joint = mono_mul(a, b)
        ctx = _product_context(joint)
        packed = ctx.div(ctx.pack(joint), ctx.pack(b))
        assert ctx.unpack(packed) == mono_div(joint, b) == a

    @given(exponents(), exponents())
    def test_exps_gcd_matches_mono_gcd(self, a, b):
        ctx = _product_context(a, b)
        lowmask = ctx.lowmask
        bits = ctx.exps_gcd(ctx.pack(a) & lowmask, ctx.pack(b) & lowmask)
        full = ctx.with_degree_field(bits)
        gcd = mono_gcd(a, b)
        assert ctx.unpack(full) == gcd
        assert ctx.degree_of(full) == mono_degree(gcd)

    @given(exponents(), exponents())
    def test_packed_order_is_inverse_grevlex(self, a, b):
        ctx = _product_context(a, b)
        pa, pb = ctx.pack(a), ctx.pack(b)
        if a == b:
            assert pa == pb
        else:
            # Smaller packed integer == grevlex-larger monomial, the
            # invariant the division heap and ``leading()`` rely on.
            assert (pa < pb) == (grevlex_key(a) > grevlex_key(b))

    @given(exponents())
    def test_unit_monomials(self, exps):
        ctx = _product_context(exps)
        for index in range(len(exps)):
            expected = tuple(
                1 if j == index else 0 for j in range(len(exps))
            )
            assert ctx.unpack(ctx.unit(index)) == expected
            assert ctx.degree_of(ctx.unit(index)) == 1


class TestContextSizing:
    def test_for_degrees_overflow_returns_none(self):
        # 200 variables at a cap needing >1024 bits total must refuse.
        assert PackedContext.for_degrees(200, 50, 50) is None

    def test_for_degrees_caches_and_clears(self):
        clear_packed_context_cache()
        ctx = PackedContext.for_degrees(3, 5, 5)
        assert ctx is not None
        assert PackedContext.for_degrees(3, 5, 5) is ctx
        assert packed_context_cache_size() >= 1
        clear_packed_context_cache()
        assert packed_context_cache_size() == 0

    def test_boundary_degree_fits(self):
        # Everything up to the summed bound must pack losslessly.
        ctx = PackedContext.for_degrees(2, 7, 7)
        exps = (14, 0)
        assert ctx.fits(14)
        assert ctx.unpack(ctx.pack(exps)) == exps

    def test_get_cache_is_bounded_lru(self):
        clear_packed_context_cache()
        limit = PackedContext._CACHE_MAX
        for degree in range(1, limit + 10):
            PackedContext.get(2, degree)
        assert packed_context_cache_size() == limit
        # The oldest shapes were evicted, the newest survive.
        with PackedContext._cache_lock:
            keys = list(PackedContext._cache)
        assert (2, 1) not in keys and (2, limit + 9) in keys
        clear_packed_context_cache()

    def test_get_is_thread_safe(self):
        clear_packed_context_cache()
        errors = []

        def worker(seed):
            rng = random.Random(seed)
            try:
                for _ in range(300):
                    degree = rng.randint(1, 40)
                    ctx = PackedContext.get(3, degree)
                    assert ctx.cap == max(degree, 1)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        clear_packed_context_cache()


POLY_VARS = ("x", "y", "z")


def _polys(draw_terms):
    terms = {}
    for exps, coeff in draw_terms:
        terms[exps] = terms.get(exps, 0) + coeff
    return Polynomial(POLY_VARS, {e: c for e, c in terms.items() if c})


poly_terms = st.lists(
    st.tuples(
        st.tuples(*[st.integers(min_value=0, max_value=4)] * 3),
        st.integers(min_value=-9, max_value=9).filter(bool),
    ),
    min_size=0,
    max_size=6,
)


class TestPackedPoly:
    @given(poly_terms)
    def test_round_trip_preserves_order(self, raw_terms):
        poly = _polys(raw_terms)
        degree = max(poly.total_degree(), 1)
        ctx = PackedContext.for_degrees(3, degree, degree)
        packed = PackedPoly.from_polynomial(poly, ctx)
        assert packed.to_terms() == list(poly.terms.items())
        assert packed.to_term_dict() == dict(poly.terms)
        assert len(packed) == len(poly.terms)

    @given(poly_terms)
    def test_leading_and_degree(self, raw_terms):
        poly = _polys(raw_terms)
        degree = max(poly.total_degree(), 1)
        ctx = PackedContext.for_degrees(3, degree, degree)
        packed = PackedPoly.from_polynomial(poly, ctx)
        if poly.is_zero:
            assert packed.total_degree() == -1
            with pytest.raises(ValueError):
                packed.leading()
        else:
            lead, coeff = packed.leading()
            expected = max(poly.terms, key=grevlex_key)
            assert ctx.unpack(lead) == expected
            assert coeff == poly.terms[expected]
            assert packed.total_degree() == poly.total_degree()
            head, head_coeff, rest = packed.lead_rest()
            assert (head, head_coeff) == (lead, coeff)
            assert dict(rest) == {
                k: c for k, c in packed.term_map().items() if k != lead
            }

    def test_packed_form_memoizes_per_context_shape(self):
        poly = Polynomial(POLY_VARS, {(1, 0, 0): 2, (0, 1, 1): -3})
        ctx = PackedContext.for_degrees(3, 4, 4)
        assert packed_form(poly, ctx) is packed_form(poly, ctx)
        other = PackedContext.for_degrees(3, 40, 40)
        assert packed_form(poly, other) is not packed_form(poly, ctx)


def _both_modes(operation):
    """Run ``operation()`` packed then tuple; restore the env decision."""
    try:
        set_packed_enabled(True)
        fast = operation()
        set_packed_enabled(False)
        slow = operation()
    finally:
        set_packed_enabled(None)
    return fast, slow


class TestWholePolynomialDifferential:
    """divmod/divide_out_all: packed and tuple paths byte-identical."""

    @settings(max_examples=60, deadline=None)
    @given(poly_terms, poly_terms)
    def test_divmod_identical(self, a_terms, b_terms):
        dividend = _polys(a_terms)
        divisor = _polys(b_terms)
        if divisor.is_zero:
            return
        fast, slow = _both_modes(lambda: divmod_poly(dividend, divisor))
        assert fast == slow
        # Identity must extend to term *order* (it leaks into greedy
        # tie-breaks downstream), not just mathematical equality.
        for f, s in zip(fast, slow):
            assert list(f.terms.items()) == list(s.terms.items())
            assert f.vars == s.vars

    @settings(max_examples=60, deadline=None)
    @given(poly_terms, poly_terms)
    def test_divide_out_all_identical(self, a_terms, b_terms):
        dividend = _polys(a_terms)
        divisor = _polys(b_terms)
        if divisor.is_zero or divisor.is_constant:
            return
        fast, slow = _both_modes(lambda: divide_out_all(dividend, divisor))
        assert fast == slow
        assert list(fast[0].terms.items()) == list(slow[0].terms.items())
        assert fast[0].vars == slow[0].vars
        assert fast[1] == slow[1]


class TestCacheRegistration:
    def test_clear_caches_covers_packed_and_rings(self):
        from repro.api import clear_caches
        from repro.rings.falling import falling_factorial_dense
        from repro.rings.modular import smarandache_lambda

        PackedContext.get(3, 7)
        smarandache_lambda(5)
        falling_factorial_dense(3)
        sizes = clear_caches()
        assert sizes["packed_contexts"] >= 1
        assert sizes["rings_modular"] >= 1
        assert sizes["rings_falling"] >= 1
        assert packed_context_cache_size() == 0
        assert smarandache_lambda.cache_info().currsize == 0
