"""Tests for resultants and discriminants."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.poly import (
    Polynomial,
    discriminant,
    parse_polynomial as P,
    poly_gcd,
    resultant,
    sylvester_matrix,
)
from tests.conftest import small_polynomials, to_sympy


class TestSylvester:
    def test_shape(self):
        matrix = sylvester_matrix(P("x^2 + 1"), P("x^3 + x"), "x")
        assert len(matrix) == 5
        assert all(len(row) == 5 for row in matrix)

    def test_degenerate_degree_rejected(self):
        with pytest.raises(ValueError):
            sylvester_matrix(P("x"), P("3", variables=("x",)), "x")


class TestResultant:
    def test_common_root_gives_zero(self):
        # both vanish at x = 1
        assert resultant(P("x^2 - 1"), P("x^2 - 3*x + 2"), "x").is_zero

    def test_coprime_nonzero(self):
        assert not resultant(P("x - 1"), P("x - 2"), "x").is_zero

    def test_classic_value(self):
        # res(x^2+1, x^2-1) = 4
        assert resultant(P("x^2 + 1"), P("x^2 - 1"), "x") == 4

    def test_bivariate_elimination(self):
        # res_x(x - y, x - 2y) = y (the x-elimination leaves y)
        result = resultant(P("x - y"), P("x - 2*y"), "x")
        assert result == P("y") or result == -P("y")

    def test_constant_cases(self):
        assert resultant(Polynomial.constant(3), P("x^2 + 1"), "x") == 9
        assert resultant(P("x^2 + 1"), Polynomial.constant(2), "x") == 4

    def test_zero_operand(self):
        assert resultant(Polynomial.zero(("x",)), P("x"), "x").is_zero

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(min_value=-5, max_value=5), min_size=2, max_size=5),
        st.lists(st.integers(min_value=-5, max_value=5), min_size=2, max_size=5),
    )
    def test_matches_sympy(self, fc, gc):
        import sympy

        f = Polynomial.from_dense(fc, "x")
        g = Polynomial.from_dense(gc, "x")
        if f.degree("x") < 1 or g.degree("x") < 1:
            return
        ours = resultant(f, g, "x")
        x = sympy.Symbol("x")
        theirs = sympy.resultant(to_sympy(f), to_sympy(g), x)
        # SymPy's PRS-based resultant can differ from the Sylvester
        # determinant by sign; magnitudes must agree.
        assert abs(ours.constant_term) == abs(int(theirs))

    @settings(max_examples=20, deadline=None)
    @given(small_polynomials(nvars=2), small_polynomials(nvars=2))
    def test_zero_iff_common_factor(self, f, g):
        if f.degree("x") < 1 or g.degree("x") < 1:
            return
        res = resultant(f, g, "x")
        shared = poly_gcd(f, g)
        if shared.degree("x") >= 1:
            assert res.is_zero
        # (the converse holds over the fraction field; content-only shares
        # can still zero the resultant, so no biconditional assert here)


class TestDiscriminant:
    def test_repeated_root_gives_zero(self):
        assert discriminant(P("x^2 - 2*x + 1"), "x").is_zero

    def test_quadratic_formula(self):
        # disc(ax^2 + bx + c) = b^2 - 4ac: for x^2 + 3x + 1 -> 5
        assert discriminant(P("x^2 + 3*x + 1"), "x") == 5

    def test_multivariate_quadratic(self):
        # disc_x(x^2 + 2xy + y^2) = 0 (perfect square)
        assert discriminant(P("x^2 + 2*x*y + y^2"), "x").is_zero

    def test_degree_zero_rejected(self):
        with pytest.raises(ValueError):
            discriminant(Polynomial.constant(5, ("x",)), "x")
