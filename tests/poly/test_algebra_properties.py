"""Deeper algebraic property tests (Gauss's lemma, Leibniz, congruences)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.poly import poly_gcd
from tests.conftest import polynomials, small_polynomials


class TestContent:
    @settings(max_examples=50)
    @given(small_polynomials(), small_polynomials())
    def test_gauss_lemma(self, a, b):
        """content(a*b) == content(a) * content(b) (Gauss)."""
        if a.is_zero or b.is_zero:
            return
        assert (a * b).content() == a.content() * b.content()

    @settings(max_examples=50)
    @given(polynomials())
    def test_primitive_decomposition(self, p):
        assert p.primitive_part().scale(p.content()) == p

    @settings(max_examples=50)
    @given(polynomials(allow_zero=False))
    def test_primitive_part_is_primitive(self, p):
        assert p.primitive_part().content() in (0, 1)


class TestDerivative:
    @settings(max_examples=50)
    @given(polynomials(), polynomials())
    def test_leibniz_rule(self, a, b):
        left = (a * b).derivative("x")
        right = a.derivative("x") * b + a * b.derivative("x")
        assert left == right

    @settings(max_examples=50)
    @given(polynomials(), polynomials())
    def test_linearity(self, a, b):
        assert (a + b).derivative("y") == a.derivative("y") + b.derivative("y")

    @settings(max_examples=50)
    @given(polynomials())
    def test_mixed_partials_commute(self, p):
        assert p.derivative("x").derivative("y") == p.derivative("y").derivative("x")


class TestEvaluation:
    @settings(max_examples=50)
    @given(
        polynomials(),
        st.integers(min_value=-50, max_value=50),
        st.integers(min_value=-50, max_value=50),
        st.integers(min_value=-50, max_value=50),
        st.integers(min_value=1, max_value=20),
    )
    def test_evaluate_mod_is_reduction(self, p, x, y, z, m):
        modulus = 1 << m
        env = {"x": x, "y": y, "z": z}
        assert p.evaluate_mod(env, modulus) == p.evaluate(env) % modulus

    @settings(max_examples=40)
    @given(polynomials(), polynomials())
    def test_substitution_evaluation_commute(self, p, q):
        """p(x := q) evaluated == p evaluated at q's value."""
        point = {"x": 2, "y": -3, "z": 1}
        substituted = p.subs({"x": q})
        inner = q.evaluate(point)
        expected = p.evaluate({**point, "x": inner})
        assert substituted.evaluate(point) == expected


class TestGcdAlgebra:
    @settings(max_examples=30, deadline=None)
    @given(small_polynomials())
    def test_idempotent(self, p):
        g = poly_gcd(p, p)
        if p.is_zero:
            assert g.is_zero
        else:
            assert g == p or g == -p

    @settings(max_examples=30, deadline=None)
    @given(small_polynomials(), st.integers(min_value=1, max_value=20))
    def test_scalar_extraction(self, p, k):
        """gcd(k*p, p) is p up to sign (scalars do not shrink the gcd)."""
        if p.is_zero:
            return
        g = poly_gcd(p.scale(k), p)
        assert g == p or g == -p


class TestUnification:
    @settings(max_examples=50)
    @given(polynomials(nvars=2), polynomials(nvars=3))
    def test_mixed_arity_arithmetic_consistent(self, a, b):
        total = a + b
        point = {"x": 2, "y": 3, "z": 5}
        assert total.evaluate(point) == a.evaluate(point) + b.evaluate(point)
