"""Unit tests for term orders."""

import pytest
from hypothesis import given

from repro.poly.orderings import (
    available_orders,
    grevlex_key,
    grlex_key,
    lex_key,
    order_key,
)
from tests.conftest import monomials


class TestNamedLookup:
    def test_names_resolve(self):
        for name in available_orders():
            assert callable(order_key(name))

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown term order"):
            order_key("degrevlex")


class TestClassicExamples:
    """The canonical x^2 vs x*y^2 comparisons from textbook examples."""

    def test_lex_first_variable_dominates(self):
        # x^1 y^0 z^0 > y^5 under lex.
        assert lex_key((1, 0, 0)) > lex_key((0, 5, 0))

    def test_grlex_degree_first(self):
        assert grlex_key((0, 5, 0)) > grlex_key((1, 0, 0))

    def test_grlex_tie_break_lex(self):
        # Same degree 3: x^2*y > x*y^2.
        assert grlex_key((2, 1, 0)) > grlex_key((1, 2, 0))

    def test_grevlex_differs_from_grlex(self):
        # Degree 5 monomials x^2*y*z^2 and x*y^3*z: grevlex prefers the one
        # with the smaller last exponent, so x*y^3*z > x^2*y*z^2.
        assert grevlex_key((1, 3, 1)) > grevlex_key((2, 1, 2))
        assert grlex_key((2, 1, 2)) > grlex_key((1, 3, 1))


class TestAdmissibility:
    """All three are admissible orders: total, 1 is minimal, multiplicative."""

    @given(monomials(), monomials())
    def test_total(self, a, b):
        for name in available_orders():
            key = order_key(name)
            assert (key(a) > key(b)) or (key(b) > key(a)) or a == b

    @given(monomials())
    def test_unit_is_minimal(self, a):
        unit = (0,) * len(a)
        for name in available_orders():
            key = order_key(name)
            assert key(a) >= key(unit)

    @given(monomials(), monomials(), monomials())
    def test_multiplication_preserves_order(self, a, b, c):
        from repro.poly.monomial import mono_mul

        for name in available_orders():
            key = order_key(name)
            if key(a) > key(b):
                assert key(mono_mul(a, c)) > key(mono_mul(b, c))
