"""Grammar-based fuzzing of the polynomial parser.

Random expression strings are generated from the parser's own grammar and
checked two ways: the parse never crashes, and the parsed polynomial
evaluates identically to a reference evaluation of the generated
expression tree (computed independently with plain integer arithmetic).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.poly import parse_polynomial

VARIABLES = ("x", "y", "z")
POINT = {"x": 3, "y": -2, "z": 5}


@st.composite
def expression(draw, depth=0):
    """Random (text, reference_value) pairs from the input grammar."""
    if depth >= 3:
        choice = draw(st.integers(min_value=0, max_value=1))
    else:
        choice = draw(st.integers(min_value=0, max_value=4))
    if choice == 0:
        value = draw(st.integers(min_value=0, max_value=99))
        return str(value), value
    if choice == 1:
        var = draw(st.sampled_from(VARIABLES))
        return var, POINT[var]
    if choice == 2:  # sum
        left_text, left_value = draw(expression(depth=depth + 1))
        right_text, right_value = draw(expression(depth=depth + 1))
        op = draw(st.sampled_from(["+", "-"]))
        value = left_value + right_value if op == "+" else left_value - right_value
        return f"({left_text} {op} {right_text})", value
    if choice == 3:  # product
        left_text, left_value = draw(expression(depth=depth + 1))
        right_text, right_value = draw(expression(depth=depth + 1))
        star = draw(st.sampled_from(["*", "*", " * "]))
        return f"({left_text}{star}{right_text})", left_value * right_value
    # power
    base_text, base_value = draw(expression(depth=depth + 1))
    exponent = draw(st.integers(min_value=0, max_value=3))
    caret = draw(st.sampled_from(["^", "**"]))
    return f"({base_text}){caret}{exponent}", base_value ** exponent


class TestParserFuzz:
    @settings(max_examples=150, deadline=None)
    @given(expression())
    def test_parse_matches_reference_evaluation(self, pair):
        text, expected = pair
        poly = parse_polynomial(text)
        assert poly.evaluate(POINT) == expected

    @settings(max_examples=100, deadline=None)
    @given(expression())
    def test_print_parse_fixpoint(self, pair):
        text, _ = pair
        poly = parse_polynomial(text)
        assert parse_polynomial(str(poly)) == poly

    @settings(max_examples=100, deadline=None)
    @given(expression(), expression())
    def test_parsed_arithmetic_homomorphic(self, a, b):
        text_a, value_a = a
        text_b, value_b = b
        total = parse_polynomial(f"({text_a}) + ({text_b})")
        assert total.evaluate(POINT) == value_a + value_b
        product = parse_polynomial(f"({text_a}) * ({text_b})")
        assert product.evaluate(POINT) == value_a * value_b
