"""Unit and property tests for polynomial division algorithms."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.poly import (
    Polynomial,
    divide_out_all,
    divides,
    divmod_poly,
    exact_divide,
    parse_polynomial as P,
    pseudo_divmod,
)
from tests.conftest import polynomials, small_polynomials


class TestDivmod:
    def test_exact_linear(self):
        q, r = divmod_poly(P("x^2 - y^2"), P("x - y"))
        assert r.is_zero and q == P("x + y")

    def test_remainder_identity(self):
        a, b = P("x^3 + x*y + 1"), P("x + y")
        q, r = divmod_poly(a, b)
        assert q * b + r == a

    def test_divide_by_constant(self):
        q, r = divmod_poly(P("4*x + 6"), P("2"))
        assert q == P("2*x + 3") and r.is_zero

    def test_non_divisible_coefficients_go_to_remainder(self):
        q, r = divmod_poly(P("3*x"), P("2*x"))
        # Over Z, 2 does not divide 3: no quotient term possible.
        assert q.is_zero and r == P("3*x")

    def test_zero_divisor_raises(self):
        with pytest.raises(ZeroDivisionError):
            divmod_poly(P("x"), Polynomial.zero(("x",)))

    def test_order_parameter(self):
        a, b = P("x^2*y + x*y^2"), P("x + y")
        for order in ("lex", "grlex", "grevlex"):
            q, r = divmod_poly(a, b, order)
            assert q * b + r == a


class TestExactDivide:
    def test_motivating_example(self):
        # P1/(x+3y) from the paper's Section 14.4.3.
        q = exact_divide(P("x^2 + 6*x*y + 9*y^2"), P("x + 3*y"))
        assert q == P("x + 3*y")

    def test_inexact_returns_none(self):
        assert exact_divide(P("x^2 + 1"), P("x + 1")) is None

    def test_degree_rejection_fast_path(self):
        assert exact_divide(P("x"), P("x^2")) is None

    def test_zero_dividend(self):
        assert exact_divide(Polynomial.zero(("x",)), P("x")).is_zero

    def test_divides_predicate(self):
        assert divides(P("x + 3*y"), P("4*x*y^2 + 12*y^3"))
        assert not divides(P("x + 2*y"), P("4*x*y^2 + 12*y^3"))

    @settings(max_examples=60)
    @given(small_polynomials(), small_polynomials())
    def test_product_always_divisible(self, a, b):
        if b.is_zero:
            return
        assert exact_divide(a * b, b) == a


class TestDivideOutAll:
    def test_square(self):
        reduced, mult = divide_out_all(P("x^2 + 6*x*y + 9*y^2"), P("x + 3*y"))
        assert mult == 2 and reduced == 1

    def test_with_cofactor(self):
        reduced, mult = divide_out_all(P("4*x*y^2 + 12*y^3"), P("x + 3*y"))
        assert mult == 1 and reduced == P("4*y^2")

    def test_no_division(self):
        reduced, mult = divide_out_all(P("x + 1"), P("y"))
        assert mult == 0 and reduced == P("x + 1")

    def test_unit_divisor_rejected(self):
        with pytest.raises(ValueError):
            divide_out_all(P("x"), Polynomial.constant(1))

    @settings(max_examples=40)
    @given(small_polynomials(), st.integers(min_value=0, max_value=3))
    def test_constructed_multiplicity_recovered(self, base, k):
        divisor = P("x + 3*y")
        if base.is_zero:
            return
        stripped, _ = divide_out_all(base, divisor)
        if stripped.is_zero:
            return
        product = stripped * divisor ** k
        _, mult = divide_out_all(product, divisor)
        assert mult == k


class TestPseudoDivision:
    def test_identity(self):
        a, b = P("x^3*y + x + 1"), P("2*x + y")
        q, r, k = pseudo_divmod(a, b, "x")
        lead = P("2")
        assert lead ** k * a == q * b + r
        assert r.degree("x") < b.degree("x")

    def test_no_coefficient_divisibility_needed(self):
        # 3x / 2x: plain division puts everything in the remainder, pseudo
        # division scales instead.
        q, r, k = pseudo_divmod(P("3*x"), P("2*x"), "x")
        assert P("2") ** k * P("3*x") == q * P("2*x") + r

    def test_zero_divisor_raises(self):
        with pytest.raises(ZeroDivisionError):
            pseudo_divmod(P("x"), Polynomial.zero(("x",)), "x")

    @settings(max_examples=50)
    @given(polynomials(nvars=2, max_terms=4, max_exp=3, max_coeff=9),
           polynomials(nvars=2, max_terms=3, max_exp=2, max_coeff=9, allow_zero=False))
    def test_identity_random(self, a, b):
        if b.degree("x") < 1:
            return
        q, r, k = pseudo_divmod(a, b, "x")
        lead = b.as_univariate("x")[b.degree("x")].with_vars(b.vars)
        assert lead ** k * a == q * b + r
