"""Unit and round-trip tests for polynomial formatting."""

from hypothesis import given

from repro.poly import Polynomial, parse_polynomial as P
from repro.poly.printer import format_monomial, format_term
from tests.conftest import polynomials


class TestFormatting:
    def test_zero(self):
        assert str(Polynomial.zero(("x",))) == "0"

    def test_constant(self):
        assert str(Polynomial.constant(-7)) == "-7"

    def test_unit_coefficients_hidden(self):
        assert str(P("x - y")) == "x - y"

    def test_powers(self):
        assert str(P("x^2*y")) == "x^2*y"

    def test_term_order_is_grlex_descending(self):
        assert str(P("1 + x + x^2")) == "x^2 + x + 1"

    def test_negative_leading(self):
        assert str(P("-x^2 + 1")) == "-x^2 + 1"

    def test_format_monomial_unit(self):
        assert format_monomial((0, 0), ("x", "y")) == ""

    def test_format_term_minus_one(self):
        assert format_term(-1, (1, 0), ("x", "y")) == "-x"

    def test_repr(self):
        assert repr(P("x + 1")) == "Polynomial('x + 1')"


class TestRoundTrip:
    @given(polynomials())
    def test_parse_of_str_is_identity(self, p):
        assert P(str(p)) == p

    @given(polynomials(), polynomials())
    def test_equal_polys_print_identically(self, a, b):
        # Determinism: a polynomial built two different ways prints the same.
        left = a + b
        right = b + a
        assert str(left) == str(right)
