"""Differential property test: heuristic GCD agrees with pure PRS.

:func:`repro.poly.gcd.poly_gcd` has two cooperating engines — the fast
GCDHEU evaluation/lift path and the always-correct primitive PRS
recursion.  The heuristic's answers are division-verified, but a subtly
*larger-than-true* common divisor would pass that check only if it
divides both inputs, and a *smaller* one would silently weaken every
downstream factorization.  So: generate seeded random pairs (with and
without planted common factors) and assert the public entry point
returns exactly what the PRS-only configuration returns, including sign
normalization and the zero/constant corner cases.
"""

from __future__ import annotations

import random

import pytest

import repro.poly.gcd as gcd_module
from repro.poly import Polynomial
from repro.poly.division import exact_divide
from repro.poly.gcd import poly_gcd

VARS = ("x", "y")


def _random_poly(rng: random.Random, max_terms=4, max_exp=3, max_coeff=12,
                 allow_zero=False) -> Polynomial:
    terms: dict[tuple[int, ...], int] = {}
    for _ in range(rng.randint(0 if allow_zero else 1, max_terms)):
        exps = tuple(rng.randint(0, max_exp) for _ in VARS)
        coeff = rng.randint(1, max_coeff) * rng.choice((1, -1))
        terms[exps] = terms.get(exps, 0) + coeff
    poly = Polynomial(VARS, {e: c for e, c in terms.items() if c})
    if poly.is_zero and not allow_zero:
        poly = poly + rng.randint(1, max_coeff)
    return poly


def _prs_only(a: Polynomial, b: Polynomial, monkeypatch) -> Polynomial:
    """poly_gcd with the heuristic disabled — the pure PRS reference."""
    with monkeypatch.context() as patch:
        patch.setattr(gcd_module, "_gcd_heuristic", lambda x, y: None)
        return poly_gcd(a, b)


def _pairs(seed: int, count: int):
    """Seeded pairs: half with a planted common factor, half independent."""
    rng = random.Random(seed)
    for index in range(count):
        if index % 2:
            g = _random_poly(rng, max_terms=2, max_exp=2, max_coeff=6)
            a = g * _random_poly(rng, max_terms=3, max_exp=2)
            b = g * _random_poly(rng, max_terms=3, max_exp=2)
        else:
            a = _random_poly(rng)
            b = _random_poly(rng)
        yield a, b


class TestHeuristicPrsAgreement:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_differential_agreement(self, seed, monkeypatch):
        for a, b in _pairs(seed, 20):
            fast = poly_gcd(a, b)
            slow = _prs_only(a, b, monkeypatch)
            assert fast == slow, f"gcd mismatch for a={a}, b={b}"
            # The answer must actually divide both inputs.
            assert exact_divide(a.with_vars(fast.vars), fast) is not None
            assert exact_divide(b.with_vars(fast.vars), fast) is not None

    def test_sign_normalization(self, monkeypatch):
        rng = random.Random(99)
        for _ in range(10):
            a = _random_poly(rng)
            b = _random_poly(rng)
            g = poly_gcd(a, b)
            assert g.leading_coeff("grevlex") > 0
            # Sign flips of the inputs never change the normalized GCD.
            assert poly_gcd(-a, b) == g
            assert poly_gcd(a, -b) == g
            assert poly_gcd(-a, -b) == g
            assert _prs_only(-a, -b, monkeypatch) == g

    def test_self_gcd_is_positive_associate(self, monkeypatch):
        rng = random.Random(7)
        for _ in range(5):
            p = _random_poly(rng)
            expected = p if p.leading_coeff("grevlex") > 0 else -p
            assert poly_gcd(p, p) == expected
            assert _prs_only(p, p, monkeypatch) == expected


class TestEdgeCases:
    ZERO = Polynomial.zero(VARS)

    @pytest.mark.parametrize("other_terms", [{(0, 0): 6}, {(1, 0): 4, (0, 1): -2}])
    def test_zero_against_anything(self, other_terms, monkeypatch):
        other = Polynomial(VARS, other_terms)
        expected = other if other.leading_coeff("grevlex") > 0 else -other
        assert poly_gcd(self.ZERO, other) == expected
        assert poly_gcd(other, self.ZERO) == expected
        assert _prs_only(self.ZERO, other, monkeypatch) == expected

    def test_zero_zero(self):
        assert poly_gcd(self.ZERO, self.ZERO).is_zero

    def test_constants(self, monkeypatch):
        a = Polynomial.constant(12, VARS)
        b = Polynomial.constant(-18, VARS)
        fast = poly_gcd(a, b)
        assert fast == Polynomial.constant(6, VARS)
        assert _prs_only(a, b, monkeypatch) == fast

    def test_constant_against_polynomial(self, monkeypatch):
        constant = Polynomial.constant(4, VARS)
        poly = Polynomial(VARS, {(1, 0): 6, (0, 0): 10})  # content 2
        fast = poly_gcd(constant, poly)
        assert fast == Polynomial.constant(2, VARS)
        assert _prs_only(constant, poly, monkeypatch) == fast
