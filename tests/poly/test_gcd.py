"""Unit and property tests for polynomial GCDs, with a SymPy oracle."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.poly import (
    Polynomial,
    content_wrt,
    coprime,
    exact_divide,
    parse_polynomial as P,
    poly_gcd,
    poly_gcd_many,
    poly_lcm,
    primitive_wrt,
)
from tests.conftest import small_polynomials, to_sympy


class TestBaseCases:
    def test_gcd_with_zero(self):
        p = P("x + 1")
        assert poly_gcd(p, Polynomial.zero(("x",))) == p
        assert poly_gcd(Polynomial.zero(("x",)), p) == p

    def test_gcd_of_constants(self):
        assert poly_gcd(Polynomial.constant(12), Polynomial.constant(18)) == 6

    def test_gcd_of_integer_multiples(self):
        assert poly_gcd(P("6*x + 6"), P("4*x + 4")) == P("2*x + 2")

    def test_gcd_normalized_positive(self):
        g = poly_gcd(P("-x - y"), P("-x^2 - x*y"))
        assert g.leading_coeff("grevlex") > 0
        assert g == P("x + y")

    def test_disjoint_variables(self):
        assert poly_gcd(P("3*x"), P("6*y")) == 3


class TestPaperExamples:
    def test_motivating_block(self):
        # gcd over the three motivating polynomials is the block x + 3y.
        polys = [
            P("x^2 + 6*x*y + 9*y^2"),
            P("4*x*y^2 + 12*y^3"),
            P("2*x^2*z + 6*x*y*z"),
        ]
        assert poly_gcd_many(polys) == P("x + 3*y")

    def test_perfect_square_derivative(self):
        # The square-free machinery reduces to gcd(f, f').
        f = P("x^2 + 2*x*y + y^2")
        assert poly_gcd(f, f.derivative("x")) == P("x + y")

    def test_univariate_repeated_factor(self):
        # Paper Example 14.1 writes (x+1)(x+2)^2, but the quartic it gives
        # actually factors as (x+1)(x+2)^3 — a typo in the paper; the
        # repeated-factor detection works either way.
        u2 = P("x^4 + 7*x^3 + 18*x^2 + 20*x + 8")  # (x+1)(x+2)^3
        assert poly_gcd(u2, u2.derivative("x")) == P("(x + 2)^2")


class TestContentWrt:
    def test_content_in_main_variable(self):
        p = P("(y + 1)*x^2 + (y^2 + y)*x")  # content wrt x is y+1
        assert content_wrt(p, "x") == P("y + 1")

    def test_primitive_wrt(self):
        p = P("(y + 1)*x^2 + (y + 1)")
        assert primitive_wrt(p, "x") == P("x^2 + 1")


class TestLcmCoprime:
    def test_lcm(self):
        assert poly_lcm(P("x*y"), P("x*z")) == P("x*y*z")

    def test_lcm_zero(self):
        assert poly_lcm(P("x"), Polynomial.zero(("x",))).is_zero

    def test_coprime(self):
        assert coprime(P("x + 1"), P("x + 2"))
        assert not coprime(P("x^2 - 1"), P("x + 1"))


class TestGcdProperties:
    @settings(max_examples=40, deadline=None)
    @given(small_polynomials(), small_polynomials())
    def test_gcd_divides_both(self, a, b):
        g = poly_gcd(a, b)
        if g.is_zero:
            assert a.is_zero and b.is_zero
            return
        assert exact_divide(a, g) is not None
        assert exact_divide(b, g) is not None

    @settings(max_examples=40, deadline=None)
    @given(small_polynomials(), small_polynomials())
    def test_gcd_symmetric(self, a, b):
        assert poly_gcd(a, b) == poly_gcd(b, a)

    @settings(max_examples=30, deadline=None)
    @given(small_polynomials(), small_polynomials(), small_polynomials())
    def test_common_factor_detected(self, a, b, f):
        if f.is_constant:
            return
        g = poly_gcd(a * f, b * f)
        # The shared factor must divide the gcd.
        assert exact_divide(g, f.primitive_part()) is not None or exact_divide(
            g, (-f).primitive_part()
        ) is not None

    @settings(max_examples=30, deadline=None)
    @given(small_polynomials(), small_polynomials())
    def test_matches_sympy(self, a, b):
        import sympy

        ours = poly_gcd(a, b)
        theirs = sympy.gcd(to_sympy(a), to_sympy(b))
        diff = sympy.simplify(to_sympy(ours) - sympy.expand(theirs))
        ndiff = sympy.simplify(to_sympy(ours) + sympy.expand(theirs))
        assert diff == 0 or ndiff == 0

    @settings(max_examples=25, deadline=None)
    @given(small_polynomials(), small_polynomials())
    def test_lcm_times_gcd_is_product(self, a, b):
        if a.is_zero or b.is_zero:
            return
        g = poly_gcd(a, b)
        m = poly_lcm(a, b)
        prod = a * b
        assert g * m == prod or g * m == -prod

    @settings(max_examples=30, deadline=None)
    @given(st.lists(small_polynomials(), min_size=1, max_size=4))
    def test_gcd_many_divides_all(self, polys):
        g = poly_gcd_many(polys)
        if g.is_zero:
            return
        for p in polys:
            assert exact_divide(p, g) is not None
