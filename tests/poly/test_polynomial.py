"""Unit and property tests for the Polynomial type."""

import pytest
from hypothesis import given, settings

from repro.poly import Polynomial, parse_polynomial as P, poly_prod, poly_sum
from tests.conftest import polynomials, to_sympy


class TestConstruction:
    def test_zero(self):
        z = Polynomial.zero(("x", "y"))
        assert z.is_zero and len(z) == 0 and not z

    def test_constant(self):
        c = Polynomial.constant(7, ("x",))
        assert c.is_constant and c.constant_term == 7

    def test_constant_zero_has_no_terms(self):
        assert Polynomial.constant(0, ("x",)).is_zero

    def test_variable(self):
        x = Polynomial.variable("x", ("x", "y"))
        assert x.terms == {(1, 0): 1}

    def test_variable_must_be_declared(self):
        with pytest.raises(ValueError):
            Polynomial.variable("w", ("x", "y"))

    def test_zero_coefficients_dropped(self):
        p = Polynomial(("x",), {(1,): 0, (0,): 3})
        assert p.terms == {(0,): 3}

    def test_duplicate_vars_rejected(self):
        with pytest.raises(ValueError):
            Polynomial(("x", "x"), {})

    def test_mismatched_exponent_arity_rejected(self):
        with pytest.raises(ValueError):
            Polynomial(("x", "y"), {(1,): 2})

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            Polynomial(("x",), {(-1,): 2})

    def test_non_integer_coeff_rejected(self):
        with pytest.raises(TypeError):
            Polynomial(("x",), {(1,): 1.5})

    def test_from_terms_sums_duplicates(self):
        p = Polynomial.from_terms(("x",), [((1,), 2), ((1,), 3)])
        assert p.terms == {(1,): 5}


class TestQueries:
    def test_degrees(self):
        p = P("x^3*y + x*y^2 + 4")
        assert p.total_degree() == 4
        assert p.degree("x") == 3
        assert p.degree("y") == 2

    def test_zero_degrees(self):
        z = Polynomial.zero(("x",))
        assert z.total_degree() == -1 and z.degree("x") == -1

    def test_is_linear(self):
        assert P("x + 3*y - 2").is_linear
        assert not P("x*y").is_linear

    def test_used_vars(self):
        p = Polynomial(("x", "y", "z"), {(1, 0, 2): 1})
        assert p.used_vars() == ("x", "z")

    def test_leading_term_orders(self):
        p = P("x^2 + x*y^2")
        assert p.leading_monomial("lex") == (2, 0)
        assert p.leading_monomial("grlex") == (1, 2)

    def test_leading_term_of_zero_raises(self):
        with pytest.raises(ValueError):
            Polynomial.zero(("x",)).leading_term()

    def test_monomial_content(self):
        p = P("4*x^2*y + 6*x*y^2")
        assert p.monomial_content() == (1, 1)

    def test_max_coeff_magnitude(self):
        assert P("3*x - 17*y").max_coeff_magnitude() == 17
        assert Polynomial.zero().max_coeff_magnitude() == 0


class TestArithmetic:
    def test_add_combines_terms(self):
        assert P("x + y") + P("x - y") == P("2*x")

    def test_add_int(self):
        assert P("x") + 5 == P("x + 5")
        assert 5 + P("x") == P("x + 5")

    def test_sub(self):
        assert P("x^2") - P("x^2") == 0
        assert 1 - P("x") == P("1 - x")

    def test_mul_distributes(self):
        assert P("x + y") * P("x - y") == P("x^2 - y^2")

    def test_mul_int(self):
        assert 3 * P("x + 1") == P("3*x + 3")

    def test_pow_binomial(self):
        assert P("x + y") ** 2 == P("x^2 + 2*x*y + y^2")

    def test_pow_zero(self):
        assert P("x + y") ** 0 == 1

    def test_pow_negative_rejected(self):
        with pytest.raises(ValueError):
            P("x") ** -1

    def test_scale(self):
        assert P("x + 2").scale(3) == P("3*x + 6")
        assert P("x").scale(0).is_zero

    def test_mul_monomial(self):
        p = P("x + y")
        assert p.mul_monomial((1, 1), 2) == P("2*x^2*y + 2*x*y^2")

    def test_mixed_variable_sets(self):
        assert P("x + y") * P("y + z") == P("x*y + x*z + y^2 + y*z")


class TestEquality:
    def test_eq_across_var_sets(self):
        a = Polynomial(("x", "y"), {(1, 0): 1})
        b = Polynomial(("x",), {(1,): 1})
        assert a == b
        assert hash(a) == hash(b)

    def test_eq_int(self):
        assert Polynomial.constant(4, ("x",)) == 4
        assert P("x") != 4

    def test_hashable_in_sets(self):
        s = {P("x + y"), P("y + x"), P("x - y")}
        assert len(s) == 2


class TestCalculus:
    def test_derivative(self):
        assert P("x^3 + x*y").derivative("x") == P("3*x^2 + y")

    def test_derivative_of_constant(self):
        assert P("5", variables=("x",)).derivative("x").is_zero

    def test_derivative_unknown_var(self):
        with pytest.raises(KeyError):
            P("x").derivative("q")

    def test_evaluate(self):
        assert P("x^2 + 2*x*y").evaluate({"x": 3, "y": 4}) == 33

    def test_evaluate_missing_var(self):
        with pytest.raises(KeyError):
            P("x + y").evaluate({"x": 1})

    def test_evaluate_mod(self):
        # 2^16 wrap-around.
        assert P("x^2").evaluate_mod({"x": 256}, 2**16) == 0

    def test_subs_polynomial(self):
        p = P("x^2 + y")
        assert p.subs({"x": P("y + 1")}) == P("y^2 + 3*y + 1")

    def test_subs_simultaneous_swap(self):
        p = P("x^2 + y")
        assert p.subs({"x": P("y"), "y": P("x")}) == P("y^2 + x")

    def test_subs_integer(self):
        assert P("x^2 + y").subs({"x": 3}) == P("y + 9")


class TestContent:
    def test_content_sign_follows_leading(self):
        assert P("-2*x^2 + 4").content() == -2
        assert P("2*x^2 - 4").content() == 2

    def test_primitive_part(self):
        p = P("6*x + 9*y")
        assert p.primitive_part() == P("2*x + 3*y")
        assert p.primitive_part().scale(p.content()) == p

    def test_zero_content(self):
        assert Polynomial.zero(("x",)).content() == 0


class TestUnivariateViews:
    def test_to_dense_roundtrip(self):
        p = P("3*x^3 + 2*x - 5")
        dense = p.to_dense("x")
        assert dense == [-5, 2, 0, 3]
        assert Polynomial.from_dense(dense, "x") == p

    def test_to_dense_rejects_multivariate(self):
        with pytest.raises(ValueError):
            P("x*y").to_dense("x")

    def test_as_univariate(self):
        p = P("x^2*y + x^2 + 3*y^2")
        view = p.as_univariate("x")
        assert view[2] == P("y + 1")
        assert view[0] == P("3*y^2")

    def test_from_univariate_roundtrip(self):
        p = P("x^2*y + x*z + 4")
        view = p.as_univariate("x")
        assert Polynomial.from_univariate(view, "x") == p


class TestHelpers:
    def test_poly_sum_prod(self):
        ps = [P("x"), P("y"), P("1")]
        assert poly_sum(ps) == P("x + y + 1")
        assert poly_prod([P("x"), P("x + 1")]) == P("x^2 + x")
        assert poly_sum([]) == 0
        assert poly_prod([]) == 1

    def test_trim(self):
        p = Polynomial(("x", "y", "z"), {(0, 1, 0): 2})
        assert p.trim().vars == ("y",)

    def test_with_vars_refuses_dropping_used(self):
        with pytest.raises(ValueError):
            P("x*y").with_vars(("x",))


class TestRingAxioms:
    """Hypothesis checks of the commutative-ring axioms plus a SymPy oracle."""

    @given(polynomials(), polynomials())
    def test_add_commutative(self, a, b):
        assert a + b == b + a

    @given(polynomials(), polynomials())
    def test_mul_commutative(self, a, b):
        assert a * b == b * a

    @given(polynomials(), polynomials(), polynomials())
    def test_add_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @settings(max_examples=50)
    @given(polynomials(), polynomials(), polynomials())
    def test_mul_associative(self, a, b, c):
        assert (a * b) * c == a * (b * c)

    @given(polynomials(), polynomials(), polynomials())
    def test_distributive(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(polynomials())
    def test_additive_inverse(self, a):
        assert (a + (-a)).is_zero

    @given(polynomials())
    def test_identities(self, a):
        assert a + 0 == a
        assert a * 1 == a
        assert (a * 0).is_zero

    @settings(max_examples=40)
    @given(polynomials(max_terms=4), polynomials(max_terms=4))
    def test_mul_matches_sympy(self, a, b):
        import sympy

        ours = to_sympy(a * b)
        theirs = sympy.expand(to_sympy(a) * to_sympy(b))
        assert sympy.simplify(ours - theirs) == 0

    @settings(max_examples=40)
    @given(polynomials())
    def test_eval_homomorphism(self, a):
        # Evaluation commutes with squaring at a fixed point.
        point = {"x": 3, "y": -2, "z": 5}
        assert (a * a).evaluate(point) == a.evaluate(point) ** 2
