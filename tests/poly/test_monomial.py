"""Unit tests for exponent-tuple monomial operations."""

import pytest
from hypothesis import given

from repro.poly.monomial import (
    mono_degree,
    mono_div,
    mono_divides,
    mono_gcd,
    mono_gcd_many,
    mono_is_one,
    mono_lcm,
    mono_literal_count,
    mono_mul,
    mono_one,
    mono_pow,
    mono_support,
)
from tests.conftest import monomials


class TestBasics:
    def test_one_is_all_zeros(self):
        assert mono_one(3) == (0, 0, 0)
        assert mono_is_one(mono_one(5))

    def test_mul_adds_exponents(self):
        assert mono_mul((1, 2, 0), (0, 3, 4)) == (1, 5, 4)

    def test_divides_componentwise(self):
        assert mono_divides((1, 0), (2, 3))
        assert not mono_divides((1, 4), (2, 3))

    def test_div_exact(self):
        assert mono_div((2, 3), (1, 0)) == (1, 3)

    def test_div_rejects_inexact(self):
        with pytest.raises(ValueError):
            mono_div((1, 0), (0, 1))

    def test_gcd_lcm(self):
        assert mono_gcd((2, 1), (1, 3)) == (1, 1)
        assert mono_lcm((2, 1), (1, 3)) == (2, 3)

    def test_degree_and_literals(self):
        assert mono_degree((2, 1, 0)) == 3
        assert mono_literal_count((2, 1, 0)) == 3

    def test_pow(self):
        assert mono_pow((1, 2), 3) == (3, 6)
        with pytest.raises(ValueError):
            mono_pow((1,), -1)

    def test_support(self):
        assert mono_support((0, 2, 0, 1)) == (1, 3)

    def test_gcd_many(self):
        assert mono_gcd_many([(2, 2), (2, 1), (3, 1)]) == (2, 1)

    def test_gcd_many_empty_rejected(self):
        with pytest.raises(ValueError):
            mono_gcd_many([])


class TestProperties:
    @given(monomials(), monomials())
    def test_mul_div_roundtrip(self, a, b):
        assert mono_div(mono_mul(a, b), b) == a

    @given(monomials(), monomials())
    def test_gcd_divides_both(self, a, b):
        g = mono_gcd(a, b)
        assert mono_divides(g, a) and mono_divides(g, b)

    @given(monomials(), monomials())
    def test_lcm_divided_by_both(self, a, b):
        m = mono_lcm(a, b)
        assert mono_divides(a, m) and mono_divides(b, m)

    @given(monomials(), monomials())
    def test_gcd_lcm_product_identity(self, a, b):
        assert mono_mul(mono_gcd(a, b), mono_lcm(a, b)) == mono_mul(a, b)
