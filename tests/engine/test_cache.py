"""Tests for the two-tier result cache and its content-hash keying."""

import json

from repro.core import SynthesisOptions
from repro.engine import DiskCache, LruCache, ResultCache, cache_key
from repro.suite import get_system
from repro.system import PolySystem


def small_system(name="s"):
    system = get_system("Table 14.1")
    return PolySystem(
        name=name, polys=system.polys, signature=system.signature
    )


class TestCacheKey:
    def test_stable_across_calls(self):
        assert cache_key(small_system()) == cache_key(small_system())

    def test_ignores_name_and_description(self):
        a = small_system("alpha")
        b = small_system("beta")
        assert cache_key(a) == cache_key(b)

    def test_sensitive_to_options(self):
        system = small_system()
        default = cache_key(system, SynthesisOptions())
        tweaked = cache_key(system, SynthesisOptions(objective="ops"))
        assert default != tweaked
        budget = cache_key(system, SynthesisOptions(descent_budget=10))
        assert default != budget

    def test_none_options_equal_defaults(self):
        system = small_system()
        assert cache_key(system, None) == cache_key(system, SynthesisOptions())

    def test_sensitive_to_method(self):
        system = small_system()
        assert cache_key(system, method="proposed") != cache_key(
            system, method="horner"
        )

    def test_sensitive_to_system_and_salt(self):
        a = small_system()
        b = get_system("Table 14.2")
        assert cache_key(a) != cache_key(b)
        assert cache_key(a) != cache_key(a, salt="other-salt")


class TestLruCache:
    def test_get_put(self):
        lru = LruCache(maxsize=2)
        assert lru.get("a") is None
        lru.put("a", "1")
        assert lru.get("a") == "1"

    def test_evicts_least_recently_used(self):
        lru = LruCache(maxsize=2)
        lru.put("a", "1")
        lru.put("b", "2")
        lru.get("a")  # refresh a; b becomes LRU
        lru.put("c", "3")
        assert lru.get("b") is None
        assert lru.get("a") == "1" and lru.get("c") == "3"


class TestDiskCache:
    def test_round_trip(self, tmp_path):
        disk = DiskCache(tmp_path)
        disk.put("k", json.dumps({"x": 1}))
        assert disk.get("k") == '{"x": 1}'
        assert disk.get("missing") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        disk = DiskCache(tmp_path)
        (tmp_path / "bad.json").write_text("{truncated", encoding="utf-8")
        assert disk.get("bad") is None


class TestResultCache:
    def test_disk_promotes_to_memory(self, tmp_path):
        first = ResultCache.create(cache_dir=tmp_path)
        first.put("k", '{"v": 1}')
        # Fresh in-memory tier, same disk directory — a new process.
        second = ResultCache.create(cache_dir=tmp_path)
        assert second.get("k") == '{"v": 1}'
        assert second.stats.disk_hits == 1
        assert second.get("k") == '{"v": 1}'
        assert second.stats.memory_hits == 1

    def test_stats_track_misses(self):
        cache = ResultCache.create()
        assert cache.get("nope") is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0
