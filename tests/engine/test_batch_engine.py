"""Tests for the batch engine: caching, parallelism, metrics, fallback."""

import pytest

import repro.engine.engine as engine_module
from repro import BatchEngine, BatchJob, RunConfig
from repro.core import SynthesisOptions
from repro.serialize import dumps
from repro.suite import get_system

SMALL_SYSTEMS = ("Table 14.1", "Table 14.2", "Section 14.3.1")


def jobs_for(names=SMALL_SYSTEMS):
    return [BatchJob(system=get_system(name)) for name in names]


class TestCaching:
    def test_second_run_is_all_hits(self):
        engine = BatchEngine(RunConfig(workers=1))
        cold = engine.run(jobs_for(["Table 14.1"]))
        assert cold.cache_hits == 0 and cold.cache_misses == 1
        warm = engine.run(jobs_for(["Table 14.1"]))
        assert warm.cache_hits == 1 and warm.cache_misses == 0
        assert warm.hit_rate == 1.0
        assert warm.results[0].payload == cold.results[0].payload

    def test_warm_run_does_zero_synthesis_work(self, monkeypatch):
        engine = BatchEngine(RunConfig(workers=1))
        engine.run(jobs_for(["Table 14.1"]))

        def explode(*args, **kwargs):
            raise AssertionError("synthesize called on a warm cache")

        monkeypatch.setattr(engine_module, "synthesize", explode)
        warm = engine.run(jobs_for(["Table 14.1"]))
        assert warm.hit_rate == 1.0
        assert warm.results[0].ok

    def test_options_change_misses(self):
        engine = BatchEngine(RunConfig(workers=1))
        system = get_system("Table 14.1")
        engine.run([BatchJob(system=system)])
        report = engine.run(
            [BatchJob(system=system, options=SynthesisOptions(objective="ops"))]
        )
        assert report.cache_misses == 1

    def test_disk_cache_survives_engine_restart(self, tmp_path):
        first = BatchEngine(RunConfig(workers=1, cache_dir=tmp_path))
        cold = first.run(jobs_for(["Table 14.1"]))
        second = BatchEngine(RunConfig(workers=1, cache_dir=tmp_path))
        warm = second.run(jobs_for(["Table 14.1"]))
        assert warm.hit_rate == 1.0
        assert warm.results[0].payload == cold.results[0].payload
        assert second.cache.stats.disk_hits == 1

    def test_errors_are_not_cached(self):
        engine = BatchEngine(RunConfig(workers=1))
        bad = [BatchJob(system=get_system("Table 14.1"), method="nope")]
        first = engine.run(bad)
        assert not first.results[0].ok
        second = engine.run(bad)
        assert second.cache_misses == 1  # failure re-attempted, not served


class TestParallel:
    def test_parallel_equals_serial_byte_identical(self):
        serial = BatchEngine(RunConfig(workers=1)).run(jobs_for())
        parallel = BatchEngine(RunConfig(workers=2)).run(jobs_for())
        assert len(serial.results) == len(parallel.results) == len(SMALL_SYSTEMS)
        for a, b in zip(serial.results, parallel.results):
            assert a.name == b.name  # deterministic input ordering
            assert a.canonical_result() == b.canonical_result()
            assert dumps(a.decomposition) == dumps(b.decomposition)

    def test_pool_failure_falls_back_in_process(self, monkeypatch):
        def broken_pool(self, batch, pending):
            raise OSError("no forks today")

        monkeypatch.setattr(BatchEngine, "_execute_pool", broken_pool)
        report = BatchEngine(RunConfig(workers=4)).run(jobs_for(["Table 14.1", "Table 14.2"]))
        assert all(r.ok for r in report.results)

    def test_workers_one_never_pools(self, monkeypatch):
        def explode(self, batch, pending):
            raise AssertionError("pool used with workers=1")

        monkeypatch.setattr(BatchEngine, "_execute_pool", explode)
        report = BatchEngine(RunConfig(workers=1)).run(jobs_for(["Table 14.1"]))
        assert report.results[0].ok


class TestReport:
    def test_results_in_input_order_with_metrics(self):
        report = BatchEngine(RunConfig(workers=1)).run(jobs_for())
        assert [r.name for r in report.results] == list(SMALL_SYSTEMS)
        for result in report.results:
            assert result.ok
            assert result.op_count is not None
            assert result.initial_op_count is not None
            assert result.seconds > 0
            phases = {p.phase for p in result.timings.phases}
            assert {"initial", "search", "validate"} <= phases
            assert result.timings.counter("combinations") > 0

    def test_phase_seconds_aggregates(self):
        report = BatchEngine(RunConfig(workers=1)).run(jobs_for())
        phases = report.phase_seconds()
        assert phases["search"] > 0
        assert sum(phases.values()) == pytest.approx(
            sum(r.timings.total_seconds() for r in report.results)
        )

    def test_summary_table_mentions_cache_and_phases(self):
        engine = BatchEngine(RunConfig(workers=1))
        engine.run(jobs_for(["Table 14.1"]))
        report = engine.run(jobs_for(["Table 14.1"]))
        table = report.summary_table()
        assert "100% hit rate" in table
        assert "phase seconds" in table
        assert "Table 14.1" in table

    def test_summary_table_reports_search_stats(self):
        report = BatchEngine(RunConfig(workers=1)).run(jobs_for())
        table = report.summary_table()
        combos = sum(
            r.timings.counter("combinations") for r in report.results
        )
        memo = sum(r.timings.counter("memo_hits") for r in report.results)
        assert combos > 0
        assert f"search: {combos} combination(s) scored" in table
        assert f"{memo} memo hit(s)" in table
        assert "memo hit rate" in table
        assert "combos" in table  # the per-job column header

    def test_accepts_bare_systems(self):
        report = BatchEngine(RunConfig(workers=1)).run([get_system("Table 14.1")])
        assert report.results[0].name == "Table 14.1"
        assert report.results[0].method == "proposed"


class TestMethods:
    def test_registry_methods_run_through_engine(self):
        engine = BatchEngine(RunConfig(workers=1))
        report = engine.run(
            [BatchJob(system=get_system("Table 14.1"), method="horner")]
        )
        [result] = report.results
        assert result.ok and result.method == "horner"
        result.decomposition.validate(list(get_system("Table 14.1").polys))

    def test_run_suite_names(self):
        engine = BatchEngine(RunConfig(workers=1))
        report = engine.run_suite(["Table 14.1", "Table 14.2"])
        assert [r.name for r in report.results] == ["Table 14.1", "Table 14.2"]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            BatchEngine(RunConfig(workers=0))
