"""Graceful-shutdown tests for the batch engine: request_stop drains
in-flight work, cancels the queue, and the signal-installing context
manager follows the first-drain / second-kill convention."""

import os
import signal
import time

import pytest

from repro.baselines import get_method, register_method, unregister_method
from repro.config import RunConfig
from repro.engine import BatchEngine, BatchJob, graceful_shutdown

from tests.service.test_service import tiny_system


class TestRequestStop:
    def test_stop_before_run_cancels_everything(self):
        engine = BatchEngine(RunConfig())
        engine.request_stop()
        report = engine.run(
            [BatchJob(system=tiny_system(k)) for k in range(1, 4)]
        )
        assert len(report.results) == 3
        assert all(r.cancelled for r in report.results)
        assert all(not r.ok for r in report.results)
        assert all((r.error or "").startswith("cancelled:") for r in report.results)
        assert len(report.cancelled) == 3
        assert report.pool.cancelled == 3

    def test_stop_mid_run_finishes_current_job_and_drains(self):
        engine = BatchEngine(RunConfig())

        def stopper(system, options=None, *, dag=None):
            engine.request_stop()  # a signal arriving mid-job
            return get_method("direct")(system, options)

        register_method("stopper", stopper, replace=True)
        try:
            report = engine.run(
                [
                    BatchJob(system=tiny_system(k), method="stopper")
                    for k in range(1, 4)
                ]
            )
        finally:
            unregister_method("stopper")
        results = report.results
        assert results[0].ok  # the in-flight job ran to completion
        assert all(r.cancelled for r in results[1:])
        assert report.pool.cancelled == 2

    def test_clear_stop_resets_the_engine(self):
        engine = BatchEngine(RunConfig())
        engine.request_stop()
        assert engine.stop_requested
        engine.clear_stop()
        assert not engine.stop_requested
        report = engine.run([BatchJob(system=tiny_system(5))])
        assert report.results[0].ok

    def test_cancelled_results_are_not_cached(self):
        engine = BatchEngine(RunConfig())
        engine.request_stop()
        engine.run([BatchJob(system=tiny_system(6))])
        engine.clear_stop()
        report = engine.run([BatchJob(system=tiny_system(6))])
        [result] = report.results
        assert result.ok and not result.cache_hit  # a real run, not a poisoned hit


class TestGracefulShutdownContext:
    def test_first_signal_drains(self):
        engine = BatchEngine(RunConfig())
        with graceful_shutdown(engine, signals=(signal.SIGUSR1,)):
            os.kill(os.getpid(), signal.SIGUSR1)
            for _ in range(100):
                if engine.stop_requested:
                    break
                time.sleep(0.01)
            assert engine.stop_requested
        # Handlers restored on exit: a later signal must not touch the engine.
        engine.clear_stop()
        previous = signal.signal(signal.SIGUSR1, signal.SIG_IGN)
        try:
            os.kill(os.getpid(), signal.SIGUSR1)
            time.sleep(0.01)
            assert not engine.stop_requested
        finally:
            signal.signal(signal.SIGUSR1, previous)

    def test_second_signal_raises_keyboard_interrupt(self):
        engine = BatchEngine(RunConfig())
        with pytest.raises(KeyboardInterrupt):
            with graceful_shutdown(engine, signals=(signal.SIGUSR1,)):
                os.kill(os.getpid(), signal.SIGUSR1)
                time.sleep(0.05)
                os.kill(os.getpid(), signal.SIGUSR1)
                time.sleep(0.05)
