"""Tests for Kronecker-substitution multivariate factorization."""

from hypothesis import given, settings

from repro.factor import factor_polynomial, factor_squarefree_kronecker
from repro.poly import parse_polynomial as P, poly_prod
from tests.conftest import small_polynomials


class TestKnownFactorizations:
    def test_difference_of_squares(self):
        factors = factor_squarefree_kronecker(P("x^2 - y^2"))
        assert sorted(map(str, factors)) == ["x + y", "x - y"]

    def test_motivating_quadratic_form(self):
        # x^2 + 4xy + 3y^2 = (x + y)(x + 3y)
        factors = factor_squarefree_kronecker(P("x^2 + 4*x*y + 3*y^2"))
        assert sorted(map(str, factors)) == ["x + 3*y", "x + y"]

    def test_irreducible_stays_whole(self):
        factors = factor_squarefree_kronecker(P("x^2 + y^2 + 1"))
        assert factors == [P("x^2 + y^2 + 1")]

    def test_three_variables(self):
        # (x + y)(y + z)
        product = P("x*y + x*z + y^2 + y*z")
        factors = factor_squarefree_kronecker(product)
        assert poly_prod(factors) == product
        assert len(factors) == 2

    def test_univariate_delegates(self):
        factors = factor_squarefree_kronecker(P("x^2 - 1", variables=("x", "y")))
        assert sorted(map(str, factors)) == ["x + 1", "x - 1"]

    def test_cubic_form(self):
        # (x - y)(x - 3y)(x + 2y)
        product = P("(x - y)*(x - 3*y)*(x + 2*y)")
        factors = factor_squarefree_kronecker(product)
        assert poly_prod(factors) == product
        assert len(factors) == 3


class TestSoundness:
    @settings(max_examples=25, deadline=None)
    @given(small_polynomials(), small_polynomials())
    def test_product_recovered(self, a, b):
        from repro.factor.squarefree import is_square_free

        if a.is_constant or b.is_constant:
            return
        product = (a * b).primitive_part()
        if product.is_constant or not is_square_free(product):
            return
        factors = factor_squarefree_kronecker(product)
        result = poly_prod(factors)
        assert result == product or result == -product
        assert len(factors) >= 2

    @settings(max_examples=25, deadline=None)
    @given(small_polynomials())
    def test_full_driver_roundtrip(self, poly):
        if poly.is_zero:
            return
        assert factor_polynomial(poly).expand() == poly
