"""Tests for the GF(p) dense polynomial engine."""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.factor.zp import (
    distinct_degree_factorization,
    equal_degree_factorization,
    is_probable_prime,
    next_prime,
    zp_add,
    zp_degree,
    zp_derivative,
    zp_divmod,
    zp_eval,
    zp_factor_squarefree,
    zp_gcd,
    zp_is_square_free,
    zp_monic,
    zp_mul,
    zp_pow_mod,
    zp_sub,
    zp_trim,
)

P = 10007  # a comfortable odd prime for the tests


def dense(st_p=P, max_deg=5):
    return st.lists(
        st.integers(min_value=0, max_value=st_p - 1), min_size=0, max_size=max_deg + 1
    ).map(lambda c: zp_trim(c, st_p))


class TestArithmetic:
    def test_trim(self):
        assert zp_trim([1, 2, 0, 0], 7) == [1, 2]
        assert zp_trim([7, 14], 7) == []

    def test_degree(self):
        assert zp_degree([]) == -1
        assert zp_degree([3]) == 0
        assert zp_degree([0, 1]) == 1

    @given(dense(), dense())
    def test_add_sub_inverse(self, f, g):
        assert zp_sub(zp_add(f, g, P), g, P) == f

    @given(dense(), dense())
    def test_mul_degree(self, f, g):
        h = zp_mul(f, g, P)
        if f and g:
            assert zp_degree(h) == zp_degree(f) + zp_degree(g)
        else:
            assert h == []

    @given(dense(), dense())
    def test_divmod_identity(self, f, g):
        if not g:
            return
        q, r = zp_divmod(f, g, P)
        assert zp_add(zp_mul(q, g, P), r, P) == f
        assert zp_degree(r) < zp_degree(g)

    def test_divide_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            zp_divmod([1], [], P)

    def test_monic(self):
        assert zp_monic([2, 4], P)[-1] == 1

    @given(dense(), dense())
    def test_gcd_divides(self, f, g):
        h = zp_gcd(f, g, P)
        if not h:
            assert not f and not g
            return
        assert zp_divmod(f, h, P)[1] == []
        assert zp_divmod(g, h, P)[1] == []

    def test_derivative(self):
        # d/dx (x^3 + 2x) = 3x^2 + 2
        assert zp_derivative([0, 2, 0, 1], P) == [2, 0, 3]

    def test_pow_mod(self):
        # x^5 mod (x^2 + 1) computed by square-and-multiply must match the
        # direct dense remainder.
        result = zp_pow_mod([0, 1], 5, [1, 0, 1], P)
        _, remainder = zp_divmod([0, 0, 0, 0, 0, 1], [1, 0, 1], P)
        assert result == remainder

    def test_eval(self):
        assert zp_eval([1, 2, 3], 2, P) == (1 + 4 + 12) % P


class TestSquareFree:
    def test_square_detected(self):
        square = zp_mul([1, 1], [1, 1], P)  # (x+1)^2
        assert not zp_is_square_free(square, P)
        assert zp_is_square_free([2, 1], P)


class TestFactorization:
    def test_ddf_splits_by_degree(self):
        # (x^2+1)(x+3) over GF(7): x^2+1 is irreducible mod 7.
        p = 7
        poly = zp_monic(zp_mul([1, 0, 1], [3, 1], p), p)
        parts = dict(
            (d, g) for g, d in distinct_degree_factorization(poly, p)
        )
        assert zp_degree(parts[1]) == 1
        assert zp_degree(parts[2]) == 2

    def test_edf_splits_equal_degree(self):
        p = 10007
        f = zp_monic(zp_mul([1, 1], [5, 1], p), p)  # (x+1)(x+5)
        rng = random.Random(42)
        factors = equal_degree_factorization(f, 1, p, rng)
        assert sorted(factors) == sorted([zp_monic([1, 1], p), zp_monic([5, 1], p)])

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=P - 1), min_size=2, max_size=4))
    def test_factor_product_of_linears(self, roots):
        # prod (x - r) for distinct r: factorization must recover each root.
        roots = sorted(set(roots))
        if len(roots) < 2:
            return
        poly = [1]
        for r in roots:
            poly = zp_mul(poly, [(-r) % P, 1], P)
        factors = zp_factor_squarefree(poly, P)
        assert len(factors) == len(roots)
        recovered = sorted((P - f[0]) % P for f in factors)
        assert recovered == roots


class TestPrimes:
    def test_small_primes(self):
        assert is_probable_prime(2)
        assert is_probable_prime(10007)
        assert not is_probable_prime(1)
        assert not is_probable_prime(10006)

    def test_next_prime(self):
        assert next_prime(10000) == 10007
        assert next_prime(1) == 2

    def test_big_prime(self):
        p = next_prime(1 << 80)
        assert p > (1 << 80) and is_probable_prime(p)
