"""Tests for square-free factorization (paper Section 14.3.2)."""

from hypothesis import given, settings

from repro.factor import (
    is_square_free,
    square_free_factorization,
    square_free_part,
)
from repro.poly import Polynomial, parse_polynomial as P
from tests.conftest import small_polynomials


class TestIsSquareFree:
    def test_paper_example_14_1(self):
        assert is_square_free(P("x^2 + 3*x + 2"))          # (x+1)(x+2)
        assert not is_square_free(P("x^4 + 7*x^3 + 18*x^2 + 20*x + 8"))

    def test_multivariate_square(self):
        assert not is_square_free(P("x^2 + 2*x*y + y^2"))

    def test_zero_not_square_free(self):
        assert not is_square_free(Polynomial.zero(("x",)))

    def test_integer_content_ignored(self):
        # 4x is square-free as a polynomial (the square 4 is a unit times
        # square in Q; only polynomial squares matter).
        assert is_square_free(P("4*x + 4"))


class TestSquareFreeFactorization:
    def test_paper_example_14_2(self):
        # 2x^7 - 2x^6 + ... = 2 (x-1) (x^2+4)^3
        u = P(
            "2*x^7 - 2*x^6 + 24*x^5 - 24*x^4 + 96*x^3 - 96*x^2 + 128*x - 128"
        )
        result = square_free_factorization(u)
        assert result.content == 2
        factors = dict(result.factors)
        assert factors[P("x - 1")] == 1
        assert factors[P("x^2 + 4")] == 3
        assert result.expand() == u

    def test_paper_example_14_3(self):
        # x^6 - 9x^4 + 24x^2 - 16 = (x^2-1)(x^2-4)^2
        u = P("x^6 - 9*x^4 + 24*x^2 - 16")
        result = square_free_factorization(u)
        factors = dict(result.factors)
        assert factors[P("x^2 - 1")] == 1
        assert factors[P("x^2 - 4")] == 2

    def test_multivariate_binomial_square(self):
        result = square_free_factorization(P("x^2 + 2*x*y + y^2"))
        assert dict(result.factors) == {P("x + y"): 2}

    def test_motivating_p1(self):
        result = square_free_factorization(P("x^2 + 6*x*y + 9*y^2"))
        assert dict(result.factors) == {P("x + 3*y"): 2}

    def test_mixed_content_and_factors(self):
        result = square_free_factorization(P("12*x^2*y + 12*x*y"))
        assert result.content == 12
        assert result.expand() == P("12*x^2*y + 12*x*y")

    def test_zero(self):
        result = square_free_factorization(Polynomial.zero(("x",)))
        assert result.content == 0 and result.factors == ()

    def test_trivial_reports_trivial(self):
        assert square_free_factorization(P("x + 1")).is_trivial()
        assert not square_free_factorization(P("(x + 1)^2")).is_trivial()

    @settings(max_examples=40, deadline=None)
    @given(small_polynomials())
    def test_expand_roundtrip(self, poly):
        if poly.is_zero:
            return
        result = square_free_factorization(poly)
        assert result.expand() == poly

    @settings(max_examples=25, deadline=None)
    @given(small_polynomials(), small_polynomials())
    def test_constructed_square_detected(self, a, b):
        if a.is_constant or b.is_zero:
            return
        product = a * a * b
        result = square_free_factorization(product)
        assert result.expand() == product
        # At least one factor must carry multiplicity >= 2 (from a^2),
        # unless a shares all content with b in a way that merges.
        assert any(m >= 2 for _, m in result.factors)

    @settings(max_examples=25, deadline=None)
    @given(small_polynomials())
    def test_bases_are_square_free(self, poly):
        if poly.is_zero:
            return
        for base, _ in square_free_factorization(poly).factors:
            assert is_square_free(base)


class TestSquareFreePart:
    def test_radical(self):
        assert square_free_part(P("(x + 1)^3")) == P("x + 1")

    def test_multivariate(self):
        assert square_free_part(P("x^2 + 6*x*y + 9*y^2")) == P("x + 3*y")
