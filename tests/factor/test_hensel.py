"""Tests for the Hensel-lifting Zassenhaus path (differential vs big-prime)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.factor import factor_squarefree_univariate, zassenhaus_factor
from repro.factor.hensel import _bezout, _hensel_step, _monicize
from repro.factor.squarefree import is_square_free
from repro.factor.zp import zp_mul, zp_sub, zp_trim
from repro.poly import Polynomial, parse_polynomial as P, poly_prod


class TestHenselStep:
    def test_single_quadratic_lift(self):
        # f = (x+1)(x+4) = x^2+5x+4; mod 3: (x+1)(x+1)? no: x+4 = x+1 mod 3 —
        # need coprime images: use f = (x+1)(x+5) = x^2+6x+5 mod 3: (x+1)(x+2).
        p = 3
        f = [5, 6, 1]
        g = [1, 1]
        h = [2, 1]
        s, t = _bezout(g, h, p)
        g2, h2, s2, t2 = _hensel_step(f, g, h, s, t, p)
        m2 = p * p
        # lifted identity f = g2 h2 (mod 9)
        product = zp_trim(zp_mul(g2, h2, m2), m2)
        assert zp_trim(zp_sub(f, product, m2), m2) == []
        # Bezout lifted too
        sg = zp_mul(s2, g2, m2)
        th = zp_mul(t2, h2, m2)
        total = zp_trim([a + b for a, b in zip(sg + [0] * 8, th + [0] * 8)], m2)
        assert total == [1]

    def test_bezout_requires_coprime(self):
        import pytest

        with pytest.raises(ValueError):
            _bezout([1, 1], [2, 2], 3)


class TestMonicize:
    def test_monic_output(self):
        monic, lead = _monicize([1, 5, 6])  # 6x^2+5x+1
        assert monic[-1] == 1 and lead == 6
        # F(y) = y^2 + 5y + 6 for f = 6x^2+5x+1 (roots scaled by lc)
        assert monic == [6, 5, 1]


class TestZassenhaus:
    def test_known_factorizations(self):
        cases = {
            "x^2 + 3*x + 2": ["x + 1", "x + 2"],
            "(x^2 - 1)*(x^2 - 4)": ["x + 1", "x + 2", "x - 1", "x - 2"],
            "6*x^2 + 5*x + 1": ["2*x + 1", "3*x + 1"],
            "(x^2 - 2)*(x^2 - 3)": ["x^2 - 2", "x^2 - 3"],
            "x^4 + x^3 + x^2 + x + 1": ["x^4 + x^3 + x^2 + x + 1"],
        }
        for text, expected in cases.items():
            factors = zassenhaus_factor(P(text), "x")
            assert sorted(map(str, factors)) == sorted(expected), text

    def test_degree_one_passthrough(self):
        assert zassenhaus_factor(P("7*x + 3"), "x") == [P("7*x + 3")]

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=4),
                st.integers(min_value=-6, max_value=6),
            ),
            min_size=1,
            max_size=3,
        )
    )
    def test_differential_vs_big_prime(self, pairs):
        """Both Zassenhaus variants must produce the same factor multiset."""
        from math import gcd

        factors_in = []
        seen = set()
        for a, b in pairs:
            g = gcd(a, abs(b)) if b else a
            a, b = a // g, b // g
            if (a, b) in seen:
                continue
            seen.add((a, b))
            factors_in.append(Polynomial.from_dense([b, a], "x"))
        product = poly_prod(factors_in).primitive_part()
        if product.degree("x") < 2 or not is_square_free(product):
            return
        hensel = sorted(map(str, zassenhaus_factor(product, "x")))
        big_prime = sorted(map(str, factor_squarefree_univariate(product, "x")))
        assert hensel == big_prime

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(min_value=-8, max_value=8), min_size=3, max_size=6))
    def test_product_reconstructed(self, coeffs):
        poly = Polynomial.from_dense(coeffs, "x").primitive_part()
        if poly.degree("x") < 2 or not is_square_free(poly):
            return
        factors = zassenhaus_factor(poly, "x")
        product = poly_prod(factors)
        assert product == poly or product == -poly
