"""Tests for the full factorization driver (content + sqf + splitting)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.factor import factor_polynomial
from repro.poly import parse_polynomial as P
from tests.conftest import small_polynomials


class TestDriver:
    def test_multiplicities_merged(self):
        # (x+1)^2 * (x+1) from separate square-free layers merges to ^3
        result = factor_polynomial(P("(x + 1)^3"))
        assert dict(result.factors) == {P("x + 1"): 3}

    def test_negative_content(self):
        result = factor_polynomial(P("-2*x^2 + 2"))
        assert result.content == -2
        assert result.expand() == P("-2*x^2 + 2")

    def test_irreducible_passthrough(self):
        poly = P("x^2 + y^2 + 1")
        result = factor_polynomial(poly)
        assert len(result.factors) == 1
        assert result.factors[0] == (poly, 1)

    def test_mixed_content_square_cofactor(self):
        poly = P("12*x^2*y + 24*x*y + 12*y")  # 12 y (x+1)^2
        result = factor_polynomial(poly)
        assert result.content == 12
        factors = dict(result.factors)
        assert factors[P("x + 1")] == 2
        assert factors[P("y")] == 1

    def test_str_rendering(self):
        text = str(factor_polynomial(P("2*(x + 1)^2")))
        assert "2" in text and "(x + 1)^2" in text

    @settings(max_examples=25, deadline=None)
    @given(
        small_polynomials(),
        small_polynomials(),
        st.integers(min_value=1, max_value=3),
    )
    def test_constructed_powers(self, a, b, k):
        if a.is_constant or b.is_zero:
            return
        product = a ** k * b
        result = factor_polynomial(product)
        assert result.expand() == product
        # total degree is conserved by the factorization
        total = sum(
            base.total_degree() * mult for base, mult in result.factors
        )
        assert total == product.total_degree()


class TestAgainstSympyMultivariate:
    @settings(max_examples=15, deadline=None)
    @given(small_polynomials(nvars=2), small_polynomials(nvars=2))
    def test_factor_counts_match_sympy(self, a, b):
        import sympy

        from tests.conftest import to_sympy

        product = a * b
        if product.is_zero or product.is_constant:
            return
        ours = factor_polynomial(product)
        theirs = sympy.factor_list(to_sympy(product))
        our_degree_mass = sum(
            max(base.total_degree(), 0) * mult for base, mult in ours.factors
        )
        their_degree_mass = sum(
            sympy.Poly(f, *sympy.symbols("x y")).total_degree() * m
            for f, m in theirs[1]
        )
        assert our_degree_mass == their_degree_mass
