"""Tests for Horner-form decompositions."""

import pytest
from hypothesis import given, settings

from repro.expr import expr_op_count, expr_to_polynomial
from repro.factor import horner_decomposition, horner_greedy, horner_univariate
from repro.poly import Polynomial, parse_polynomial as P, parse_system
from tests.conftest import polynomials


class TestHornerUnivariate:
    def test_classic_nesting(self):
        # 3x^3 + 2x^2 + 5x + 7 -> x(x(3x + 2) + 5) + 7: 3 MULT, 3 ADD
        expr = horner_univariate(P("3*x^3 + 2*x^2 + 5*x + 7"), "x")
        assert expr_to_polynomial(expr) == P("3*x^3 + 2*x^2 + 5*x + 7")
        count = expr_op_count(expr)
        assert (count.mul, count.add) == (3, 3)

    def test_missing_powers_bridged(self):
        expr = horner_univariate(P("x^5 + 1"), "x")
        assert expr_to_polynomial(expr) == P("x^5 + 1")

    def test_paper_table_14_1_counts(self):
        # Horner in main variable x over the motivating system: 15M / 4A.
        system = parse_system(
            ["x^2 + 6*x*y + 9*y^2", "4*x*y^2 + 12*y^3", "2*x^2*z + 6*x*y*z"]
        )
        total_mul = total_add = 0
        for poly in system:
            count = expr_op_count(horner_univariate(poly, "x"))
            total_mul += count.mul
            total_add += count.add
        assert (total_mul, total_add) == (15, 4)

    def test_constant_input(self):
        expr = horner_univariate(Polynomial.constant(5, ("x",)), "x")
        assert expr_to_polynomial(expr) == 5


class TestHornerGreedy:
    def test_never_worse_than_direct(self):
        from repro.expr import expr_from_polynomial

        for text in ("x^2 + 6*x*y + 9*y^2", "4*x*y^2 + 12*y^3", "x*y*z + x*y + x"):
            poly = P(text)
            greedy = expr_op_count(horner_greedy(poly))
            direct = expr_op_count(expr_from_polynomial(poly))
            assert greedy.weighted() <= direct.weighted()

    @settings(max_examples=60)
    @given(polynomials())
    def test_correctness_random(self, poly):
        assert expr_to_polynomial(horner_greedy(poly)) == poly

    @settings(max_examples=60)
    @given(polynomials())
    def test_univariate_correctness_random(self, poly):
        expr = horner_univariate(poly, "x")
        assert expr_to_polynomial(expr) == poly


class TestHornerDecomposition:
    def test_validates(self):
        system = parse_system(["x^2 + 1", "y^3 + y"])
        for mode in ("greedy", "univariate"):
            decomposition = horner_decomposition(system, mode=mode)
            assert len(decomposition.outputs) == 2

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            horner_decomposition([P("x")], mode="sideways")
