"""Tests for big-prime Zassenhaus factorization over Z."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.factor import (
    factor_polynomial,
    factor_squarefree_univariate,
    is_irreducible_univariate,
    mignotte_bound,
)
from repro.poly import Polynomial, parse_polynomial as P, poly_prod
from tests.conftest import to_sympy


class TestMignotteBound:
    def test_monotone_in_height(self):
        assert mignotte_bound([1, 0, 10]) > mignotte_bound([1, 0, 1])

    def test_covers_known_factor(self):
        # (x+9)(x+11) = x^2 + 20x + 99: factors' coefficients <= bound.
        assert mignotte_bound([99, 20, 1]) >= 11


class TestFactorSquarefree:
    def test_two_linears(self):
        factors = factor_squarefree_univariate(P("x^2 + 3*x + 2"), "x")
        assert sorted(map(str, factors)) == ["x + 1", "x + 2"]

    def test_irreducible_quadratic(self):
        factors = factor_squarefree_univariate(P("x^2 + 1"), "x")
        assert factors == [P("x^2 + 1")]

    def test_paper_example_14_3_inner(self):
        # (x^2-1)(x^2-4) splits completely
        factors = factor_squarefree_univariate(P("(x^2 - 1)*(x^2 - 4)"), "x")
        assert sorted(map(str, factors)) == ["x + 1", "x + 2", "x - 1", "x - 2"]

    def test_leading_coefficient(self):
        factors = factor_squarefree_univariate(P("6*x^2 + 5*x + 1"), "x")
        assert sorted(map(str, factors)) == ["2*x + 1", "3*x + 1"]

    def test_degree_one_returned_whole(self):
        assert factor_squarefree_univariate(P("3*x + 2"), "x") == [P("3*x + 2")]

    def test_cyclotomic_stays_irreducible(self):
        # x^4 + x^3 + x^2 + x + 1 (5th cyclotomic) is irreducible.
        assert is_irreducible_univariate(P("x^4 + x^3 + x^2 + x + 1"), "x")

    def test_swinnerton_dyer_style(self):
        # (x^2 - 2)(x^2 - 3): irreducible quadratics whose modular images
        # split — classic recombination stress test.
        factors = factor_squarefree_univariate(P("(x^2 - 2)*(x^2 - 3)"), "x")
        assert sorted(map(str, factors)) == ["x^2 - 2", "x^2 - 3"]

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=5),
                st.integers(min_value=-9, max_value=9),
            ),
            min_size=1,
            max_size=3,
        )
    )
    def test_product_of_random_linears(self, pairs):
        # distinct primitive linear factors a*x + b, gcd-free, product recovered
        from math import gcd

        factors_in = []
        seen = set()
        for a, b in pairs:
            g = gcd(a, abs(b)) if b else a
            a, b = a // g, b // g
            if (a, b) in seen or (a, -b) in seen:
                continue
            seen.add((a, b))
            factors_in.append(Polynomial.from_dense([b, a], "x"))
        product = poly_prod(factors_in)
        from repro.factor.squarefree import is_square_free

        if not is_square_free(product):
            return
        out = factor_squarefree_univariate(product, "x")
        assert poly_prod(out) == product
        assert len(out) == len(factors_in)


class TestFullFactorDriver:
    def test_paper_example_full(self):
        result = factor_polynomial(P("x^6 - 9*x^4 + 24*x^2 - 16"))
        factors = {str(base): mult for base, mult in result.factors}
        assert factors == {
            "x + 1": 1,
            "x - 1": 1,
            "x + 2": 2,
            "x - 2": 2,
        }
        assert result.expand() == P("x^6 - 9*x^4 + 24*x^2 - 16")

    def test_content_extracted(self):
        result = factor_polynomial(P("6*x^2 - 6"))
        assert result.content == 6
        assert result.expand() == P("6*x^2 - 6")

    def test_zero(self):
        result = factor_polynomial(Polynomial.zero(("x",)))
        assert result.content == 0

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(st.integers(min_value=-6, max_value=6), min_size=3, max_size=6)
    )
    def test_matches_sympy_on_random_univariate(self, coeffs):
        import sympy

        poly = Polynomial.from_dense(coeffs, "x")
        if poly.is_zero or poly.degree("x") < 1:
            return
        ours = factor_polynomial(poly)
        assert ours.expand() == poly
        x = sympy.Symbol("x")
        theirs = sympy.factor_list(to_sympy(poly))
        # same number of irreducible factors counted with multiplicity
        our_count = sum(m * max(b.degree("x"), 0) for b, m in ours.factors)
        their_count = sum(
            m * sympy.Poly(f, x).degree() for f, m in theirs[1]
        )
        assert our_count == their_count
