"""Tests for expression rendering (summaries shown to users)."""

from repro.expr import make_add, make_mul, make_pow
from repro.expr.ast import BlockRef, Const, Var


class TestRendering:
    def test_simple_sum(self):
        assert str(make_add("x", "y")) == "(x + y)"

    def test_subtraction_rendered_with_minus(self):
        assert str(make_add("x", make_mul(-1, "y"))) == "(x - y)"

    def test_negative_coefficient(self):
        assert str(make_add("x", make_mul(-3, "y"))) == "(x - 3*y)"

    def test_power(self):
        assert str(make_pow(BlockRef("d1"), 2)) == "d1^2"

    def test_product_with_constant(self):
        assert str(make_mul(4, "x", "y")) == "4*x*y"

    def test_leaf_nodes(self):
        assert str(Const(-7)) == "-7"
        assert str(Var("x")) == "x"
        assert str(BlockRef("_b1")) == "_b1"

    def test_paper_style_decomposition_line(self):
        # 13*d1^2 + 7*d2 + 11 renders like the paper's final row
        expr = make_add(
            make_mul(13, make_pow(BlockRef("d1"), 2)),
            make_mul(7, BlockRef("d2")),
            11,
        )
        assert str(expr) == "(13*d1^2 + 7*d2 + 11)"
