"""Tests for MULT/ADD operator counting — the paper's cost arithmetic."""

from repro.expr import OpCount, expr_from_polynomial, expr_op_count, make_add, make_mul, make_pow
from repro.expr.ast import BlockRef, Const, Var
from repro.poly import parse_polynomial as P


class TestOpCount:
    def test_addition(self):
        assert OpCount(1, 2) + OpCount(3, 4) == OpCount(4, 6)

    def test_variable_mul_breakdown(self):
        count = OpCount(mul=5, add=1, const_mul=2)
        assert count.variable_mul == 3

    def test_weighted_prices_const_mults_cheap(self):
        pure = OpCount(mul=1, add=0, const_mul=0)
        const = OpCount(mul=1, add=0, const_mul=1)
        assert pure.weighted() > const.weighted()

    def test_str(self):
        assert str(OpCount(8, 1)) == "8 MULT, 1 ADD"


class TestLeafCosts:
    def test_leaves_free(self):
        for leaf in (Const(5), Var("x"), BlockRef("d")):
            assert expr_op_count(leaf) == OpCount()


class TestPaperCounts:
    """The counting rules must reproduce the paper's Table 14.1 numbers."""

    def test_direct_p1(self):
        # x^2 + 6xy + 9y^2: 1 + 2 + 2 = 5 MULT, 2 ADD
        count = expr_op_count(expr_from_polynomial(P("x^2 + 6*x*y + 9*y^2")))
        assert (count.mul, count.add) == (5, 2)

    def test_direct_p2(self):
        # 4xy^2 + 12y^3: 3 + 3 = 6 MULT, 1 ADD
        count = expr_op_count(expr_from_polynomial(P("4*x*y^2 + 12*y^3")))
        assert (count.mul, count.add) == (6, 1)

    def test_direct_p3(self):
        # 2x^2z + 6xyz: 3 + 3 = 6 MULT, 1 ADD
        count = expr_op_count(expr_from_polynomial(P("2*x^2*z + 6*x*y*z")))
        assert (count.mul, count.add) == (6, 1)

    def test_motivating_total_direct(self):
        total = OpCount()
        for text in ("x^2 + 6*x*y + 9*y^2", "4*x*y^2 + 12*y^3", "2*x^2*z + 6*x*y*z"):
            total = total + expr_op_count(expr_from_polynomial(P(text)))
        assert (total.mul, total.add) == (17, 4)


class TestCountingRules:
    def test_unit_constants_free(self):
        assert expr_op_count(make_mul(-1, "x")).mul == 0

    def test_constant_factor_is_one_mult(self):
        count = expr_op_count(make_mul(7, "x"))
        assert (count.mul, count.const_mul) == (1, 1)

    def test_pow_chain(self):
        assert expr_op_count(make_pow("x", 4)).mul == 3

    def test_nary_add(self):
        assert expr_op_count(make_add("x", "y", "z", 1)).add == 3

    def test_nested(self):
        # 13*(x+y)^2: pow (1 mul) + const join (1 mul) + inner add
        expr = make_mul(13, make_pow(make_add("x", "y"), 2))
        count = expr_op_count(expr)
        assert (count.mul, count.add, count.const_mul) == (2, 1, 1)
