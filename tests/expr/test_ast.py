"""Unit and property tests for expression nodes and smart constructors."""

import pytest
from hypothesis import given

from repro.expr import (
    Add,
    BlockRef,
    Const,
    Mul,
    Pow,
    Var,
    evaluate_expr,
    expr_from_polynomial,
    expr_to_polynomial,
    make_add,
    make_mul,
    make_pow,
)
from repro.expr.ast import expr_block_refs
from repro.poly import parse_polynomial as P
from tests.conftest import polynomials


class TestSmartConstructors:
    def test_add_folds_constants(self):
        assert make_add(1, 2, Var("x")) == Add((Var("x"), Const(3)))

    def test_add_flattens(self):
        nested = make_add(make_add("x", "y"), "z")
        assert isinstance(nested, Add) and len(nested.operands) == 3

    def test_add_empty_is_zero(self):
        assert make_add() == Const(0)

    def test_add_singleton_unwraps(self):
        assert make_add(Var("x")) == Var("x")

    def test_mul_folds_constants(self):
        assert make_mul(2, 3, Var("x")) == Mul((Const(6), Var("x")))

    def test_mul_zero_collapses(self):
        assert make_mul(0, Var("x")) == Const(0)

    def test_mul_unit_dropped(self):
        assert make_mul(1, Var("x")) == Var("x")

    def test_pow_folding(self):
        assert make_pow("x", 0) == Const(1)
        assert make_pow("x", 1) == Var("x")
        assert make_pow(Const(3), 2) == Const(9)
        assert make_pow(make_pow("x", 2), 3) == Pow(Var("x"), 6)

    def test_pow_negative_rejected(self):
        with pytest.raises(ValueError):
            make_pow("x", -1)

    def test_coercion(self):
        assert make_add("x", 1) == Add((Var("x"), Const(1)))
        with pytest.raises(TypeError):
            make_add(1.5)


class TestExprPolynomialBridge:
    def test_expr_from_polynomial_direct(self):
        expr = expr_from_polynomial(P("x^2 + 6*x*y + 9*y^2"))
        assert expr_to_polynomial(expr) == P("x^2 + 6*x*y + 9*y^2")

    def test_block_resolution(self):
        blocks = {"d": make_add("x", make_mul(3, "y"))}
        expr = make_pow(BlockRef("d"), 2)
        assert expr_to_polynomial(expr, blocks) == P("(x + 3*y)^2")

    def test_chained_blocks(self):
        blocks = {
            "a": make_add("x", 1),
            "b": make_mul(BlockRef("a"), "y"),
        }
        assert expr_to_polynomial(BlockRef("b"), blocks) == P("x*y + y")

    def test_undefined_block(self):
        with pytest.raises(KeyError):
            expr_to_polynomial(BlockRef("nope"), {})

    def test_cyclic_blocks_detected(self):
        blocks = {"a": BlockRef("b"), "b": BlockRef("a")}
        with pytest.raises(ValueError, match="cyclic"):
            expr_to_polynomial(BlockRef("a"), blocks)

    @given(polynomials())
    def test_roundtrip_random(self, poly):
        assert expr_to_polynomial(expr_from_polynomial(poly)) == poly


class TestEvaluate:
    def test_simple(self):
        expr = make_add(make_mul(2, "x"), 5)
        assert evaluate_expr(expr, {"x": 10}) == 25

    def test_modular(self):
        expr = make_pow("x", 2)
        assert evaluate_expr(expr, {"x": 256}, modulus=2**16) == 0

    def test_blocks_cached_and_shared(self):
        blocks = {"d": make_add("x", "y")}
        expr = make_mul(BlockRef("d"), BlockRef("d"))
        assert evaluate_expr(expr, {"x": 2, "y": 3}, blocks) == 25

    @given(polynomials())
    def test_matches_polynomial_evaluation(self, poly):
        expr = expr_from_polynomial(poly)
        env = {"x": 3, "y": -1, "z": 2}
        assert evaluate_expr(expr, env) == poly.evaluate(env)


class TestBlockRefs:
    def test_collects_refs(self):
        expr = make_add(BlockRef("a"), make_mul(BlockRef("b"), "x"))
        assert expr_block_refs(expr) == {"a", "b"}

    def test_pow_base_searched(self):
        assert expr_block_refs(make_pow(BlockRef("a"), 3)) == {"a"}

    def test_no_refs(self):
        assert expr_block_refs(make_add("x", 1)) == set()
