"""Tests for system-level decompositions (blocks + outputs)."""

import pytest

from repro.expr import Decomposition, OpCount, make_add, make_mul, make_pow
from repro.expr.ast import BlockRef
from repro.poly import parse_polynomial as P, parse_system


def motivating_decomposition() -> Decomposition:
    """The paper's Table 14.1 proposed decomposition."""
    d = Decomposition(method="paper")
    d.define_block("d1", make_add("x", make_mul(3, "y")))
    d.outputs = [
        make_pow(BlockRef("d1"), 2),
        make_mul(4, make_pow("y", 2), BlockRef("d1")),
        make_mul(2, "x", "z", BlockRef("d1")),
    ]
    return d


class TestDefineBlock:
    def test_duplicate_rejected(self):
        d = Decomposition()
        d.define_block("a", make_add("x", 1))
        with pytest.raises(ValueError):
            d.define_block("a", make_add("x", 2))

    def test_forward_reference_rejected(self):
        d = Decomposition()
        with pytest.raises(KeyError):
            d.define_block("a", BlockRef("later"))


class TestLiveBlocks:
    def test_unreferenced_blocks_dead(self):
        d = motivating_decomposition()
        d.define_block("unused", make_add("x", "y"))
        assert "unused" not in d.live_blocks()
        assert d.live_blocks() == ["d1"]

    def test_transitive_liveness(self):
        d = Decomposition()
        d.define_block("a", make_add("x", 1))
        d.define_block("b", make_mul(BlockRef("a"), "y"))
        d.outputs = [BlockRef("b")]
        assert d.live_blocks() == ["a", "b"]


class TestOpCount:
    def test_paper_count(self):
        # Table 14.1 proposed: 8 MULT, 1 ADD.
        count = motivating_decomposition().op_count()
        assert (count.mul, count.add) == (8, 1)

    def test_dead_blocks_not_counted(self):
        d = motivating_decomposition()
        base = d.op_count()
        d.define_block("dead", make_mul("x", "y", "z"))
        assert d.op_count() == base

    def test_shared_block_counted_once(self):
        d = Decomposition()
        d.define_block("s", make_mul("x", "y"))
        d.outputs = [BlockRef("s"), BlockRef("s"), BlockRef("s")]
        assert d.op_count() == OpCount(1, 0)


class TestValidate:
    def test_valid(self):
        system = parse_system(
            ["x^2 + 6*x*y + 9*y^2", "4*x*y^2 + 12*y^3", "2*x^2*z + 6*x*y*z"]
        )
        motivating_decomposition().validate(system)  # should not raise

    def test_wrong_polynomial_detected(self):
        d = motivating_decomposition()
        with pytest.raises(ValueError, match="expands to"):
            d.validate(parse_system(["x", "y", "z"]))

    def test_wrong_arity_detected(self):
        d = motivating_decomposition()
        with pytest.raises(ValueError, match="outputs"):
            d.validate(parse_system(["x"]))

    def test_validate_mod(self):
        d = Decomposition()
        d.outputs = [make_pow("x", 2)]
        # x^2 and x^2 + 2^16 * x are the same function mod 2^16... at x even;
        # use the true vanishing polynomial 2^15 * x(x-1) instead.
        target = P("x^2") + P("x^2 - x").scale(1 << 15)
        samples = [{"x": v} for v in range(16)]
        d.validate_mod([target], 1 << 16, samples)

    def test_validate_mod_catches_mismatch(self):
        d = Decomposition()
        d.outputs = [make_pow("x", 2)]
        samples = [{"x": v} for v in range(4)]
        with pytest.raises(ValueError, match="disagrees"):
            d.validate_mod([P("x^2 + 1")], 1 << 16, samples)


class TestSummary:
    def test_mentions_blocks_and_cost(self):
        text = motivating_decomposition().summary()
        assert "d1" in text and "cost:" in text and "8 MULT" in text
