"""Tests for tree-height measurement and balanced lowering."""

from repro.dfg import asap_levels, build_dfg
from repro.expr import Decomposition, make_add, make_mul, make_pow
from repro.expr.balance import expr_depth, tree_height_reduction_gain
from repro.rings import BitVectorSignature

SIG = BitVectorSignature.uniform(("x", "y"), 16)


def depth_of_graph(expr, balanced):
    d = Decomposition()
    d.outputs = [expr]
    g = build_dfg(d, SIG, balanced=balanced)
    levels = asap_levels(g)
    return max(levels[i] for i in g.outputs)


class TestExprDepth:
    def test_leaves(self):
        from repro.expr.ast import Var

        assert expr_depth(Var("x")) == 0

    def test_sum_logarithmic(self):
        assert expr_depth(make_add("x", "y", "x", "y")) == 2

    def test_pow_chain_vs_balanced(self):
        expr = make_pow("x", 8)
        assert expr_depth(expr, balanced_pow=False) == 7
        assert expr_depth(expr, balanced_pow=True) == 3

    def test_gain(self):
        assert tree_height_reduction_gain(make_pow("x", 8)) == 4
        assert tree_height_reduction_gain(make_add("x", "y")) == 0


class TestBalancedLowering:
    def test_power_depth_reduced(self):
        expr = make_pow("x", 8)
        assert depth_of_graph(expr, balanced=False) == 7
        assert depth_of_graph(expr, balanced=True) == 3

    def test_power_ops_not_worse(self):
        from repro.dfg import NodeKind

        expr = make_pow("x", 8)
        d = Decomposition()
        d.outputs = [expr]
        chained = build_dfg(d, SIG, balanced=False).count(NodeKind.MUL)
        balanced = build_dfg(d, SIG, balanced=True).count(NodeKind.MUL)
        assert balanced <= chained
        assert balanced == 3  # x^2, x^4, x^8

    def test_product_tree(self):
        expr = make_mul("x", "y", "x", "y", "x", "y", "x", "y")
        assert depth_of_graph(expr, balanced=True) <= 3
        assert depth_of_graph(expr, balanced=False) >= 4

    def test_semantics_preserved(self):
        from repro.dfg import simulate

        expr = make_mul(make_pow("x", 5), make_add("x", "y"), "y")
        d = Decomposition()
        d.outputs = [expr]
        flat = build_dfg(d, SIG, balanced=False)
        tree = build_dfg(d, SIG, balanced=True)
        for env in ({"x": 3, "y": 7}, {"x": 255, "y": 1000}):
            assert simulate(flat, env) == simulate(tree, env)
