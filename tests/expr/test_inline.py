"""Tests for alias-block inlining."""

from repro.expr import Decomposition, OpCount, make_add, make_mul, make_pow
from repro.expr.ast import BlockRef, Var


def build():
    d = Decomposition()
    d.blocks["real"] = make_add("x", "y")
    d.blocks["alias"] = BlockRef("real")
    d.blocks["var_alias"] = Var("x")
    d.outputs = [
        make_pow(BlockRef("alias"), 2),
        make_mul(3, BlockRef("var_alias")),
        BlockRef("real"),
    ]
    return d


class TestInlineTrivialBlocks:
    def test_aliases_removed(self):
        d = build()
        before_polys = d.to_polynomials()
        before_cost = d.op_count()
        inlined = d.inline_trivial_blocks()
        assert inlined == 2
        assert set(d.blocks) == {"real"}
        assert d.to_polynomials() == before_polys
        assert d.op_count() == before_cost

    def test_alias_chain(self):
        d = Decomposition()
        d.blocks["a"] = make_add("x", 1)
        d.blocks["b"] = BlockRef("a")
        d.blocks["c"] = BlockRef("b")
        d.outputs = [BlockRef("c")]
        d.inline_trivial_blocks()
        assert set(d.blocks) == {"a"}
        assert d.outputs == [BlockRef("a")]

    def test_no_aliases_noop(self):
        d = Decomposition()
        d.blocks["a"] = make_add("x", 1)
        d.outputs = [BlockRef("a")]
        assert d.inline_trivial_blocks() == 0

    def test_cost_never_changes(self):
        d = build()
        assert d.op_count() == OpCount(2, 1, 1)
        d.inline_trivial_blocks()
        assert d.op_count() == OpCount(2, 1, 1)
