"""Ablation bench — contribution of each phase of the integrated flow.

DESIGN.md calls out four design decisions for ablation; this bench turns
each phase off in turn and measures the area on a representative set of
systems.  Expected shape: the full flow is never worse than any ablated
variant, and each phase is *load-bearing* on at least one system (turning
it off hurts somewhere).
"""

import pytest

from repro.core import SynthesisOptions, synthesize
from repro.cost import estimate_decomposition
from repro.suite import get_system

from bench_common import record_table

SYSTEMS = ("Table 14.1", "Table 14.2", "Quad", "Mibench", "MVCS")

VARIANTS = {
    "full": SynthesisOptions(),
    "no-cce": SynthesisOptions(enable_cce=False),
    "no-division": SynthesisOptions(enable_division=False),
    "no-factoring": SynthesisOptions(enable_factoring=False),
    "no-canonical": SynthesisOptions(enable_canonical=False),
    "no-cse-exposure": SynthesisOptions(enable_cse_exposure=False),
    "ops-objective": SynthesisOptions(objective="ops"),
}

_AREAS: dict[tuple[str, str], float] = {}


def _area(system_name: str, variant: str) -> float:
    key = (system_name, variant)
    if key not in _AREAS:
        system = get_system(system_name)
        result = synthesize(
            list(system.polys), system.signature, VARIANTS[variant]
        )
        _AREAS[key] = estimate_decomposition(
            result.decomposition, system.signature
        ).area
    return _AREAS[key]


@pytest.mark.parametrize("system_name", SYSTEMS)
def test_ablation_system(system_name, benchmark):
    def run():
        return {variant: _area(system_name, variant) for variant in VARIANTS}

    areas = benchmark.pedantic(run, rounds=1, iterations=1)
    # The full flow must be at least as good as every ablation on this
    # system (the search includes each ablated flow's candidates).
    full = areas["full"]
    for variant, area in areas.items():
        if variant in ("full", "ops-objective"):
            continue
        assert full <= area * 1.0001, (
            f"{system_name}: full flow ({full}) worse than {variant} ({area})"
        )


def test_ablation_summary(recorder, benchmark):
    if len(_AREAS) < len(SYSTEMS) * len(VARIANTS):
        pytest.skip("ablation rows did not all run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    header = f"{'system':12s}" + "".join(f"{v:>16s}" for v in VARIANTS)
    lines = [header]
    for system_name in SYSTEMS:
        row = f"{system_name:12s}"
        for variant in VARIANTS:
            row += f"{_AREAS[(system_name, variant)]:16.0f}"
        lines.append(row)
    record_table("Ablation — area (GE) per disabled phase", lines)

    # Each phase must matter somewhere: disabling it should cost area on
    # at least one system.
    for variant in ("no-cce", "no-division", "no-factoring"):
        hurts_somewhere = any(
            _AREAS[(s, variant)] > _AREAS[(s, "full")] * 1.01 for s in SYSTEMS
        )
        assert hurts_somewhere, f"{variant} never changed any result"
