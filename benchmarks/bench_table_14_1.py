"""Regenerate Table 14.1 — decompositions of the motivating system.

Paper rows (operator counts for P1..P3):

    direct implementation     17 MULT   4 ADD
    Horner form               15 MULT   4 ADD
    kernel CSE [13]           12 MULT   4 ADD
    proposed decomposition     8 MULT   1 ADD   (d1 = x + 3y)

Operator counts are technology-independent, so these must reproduce
*exactly* (the kernel-CSE row is an upper bound: our reimplementation of
[13] is allowed to be stronger than the 2009 JuanCSE binary).
"""

from repro.baselines import (
    direct_decomposition,
    factor_cse_decomposition,
    horner_baseline,
)
from repro.core import synthesize
from repro.suite import table_14_1_system

from bench_common import record_table


def _rows():
    system = table_14_1_system()
    polys = list(system.polys)
    rows = []
    direct = direct_decomposition(polys).op_count()
    horner = horner_baseline(polys, mode="univariate", var="x").op_count()
    kernel_cse = factor_cse_decomposition(polys).op_count()
    proposed = synthesize(polys, system.signature).op_count
    rows.append(("direct implementation", direct, (17, 4)))
    rows.append(("Horner form", horner, (15, 4)))
    rows.append(("kernel CSE [13]", kernel_cse, (12, 4)))
    rows.append(("proposed decomposition", proposed, (8, 1)))
    return rows


def test_table_14_1(benchmark, recorder):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    lines = [f"{'decomposition':24s} {'MULT':>5s} {'ADD':>4s}   paper"]
    for name, count, paper in rows:
        lines.append(
            f"{name:24s} {count.mul:5d} {count.add:4d}   {paper[0]}/{paper[1]}"
        )
    record_table("Table 14.1 — motivating example operator counts", lines)

    by_name = {name: count for name, count, _ in rows}
    assert (by_name["direct implementation"].mul,
            by_name["direct implementation"].add) == (17, 4)
    assert (by_name["Horner form"].mul, by_name["Horner form"].add) == (15, 4)
    # our CSE may beat the 2009 tool, never lose to it
    assert by_name["kernel CSE [13]"].mul <= 12
    assert by_name["kernel CSE [13]"].add <= 4
    assert by_name["proposed decomposition"].mul <= 8
    assert by_name["proposed decomposition"].add <= 2
    # ordering of the methods is the paper's headline
    assert (
        by_name["proposed decomposition"].mul
        < by_name["kernel CSE [13]"].mul
        <= by_name["Horner form"].mul
        < by_name["direct implementation"].mul
    )
