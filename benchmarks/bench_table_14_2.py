"""Regenerate Table 14.2 — Algorithm 7's worked example.

Paper numbers: initial cost 51 MULT / 21 ADD, final decomposition
14 MULT / 12 ADD via the blocks d1 = x+y, d2 = x-y, d3 = x(x-1)y(y-1).
"""

from repro.core import synthesize
from repro.poly import parse_polynomial as P
from repro.suite import table_14_2_system

from bench_common import record_table


def _run():
    system = table_14_2_system()
    return synthesize(list(system.polys), system.signature)


def test_table_14_2(benchmark, recorder):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [
        f"initial cost : {result.initial_op_count}   (paper: 51 MULT, 21 ADD)",
        f"final cost   : {result.op_count}   (paper: 14 MULT, 12 ADD)",
        "",
    ]
    lines.extend(result.decomposition.summary().splitlines())
    record_table("Table 14.2 — Algorithm 7 worked example", lines)

    assert (result.initial_op_count.mul, result.initial_op_count.add) == (51, 21)
    assert result.op_count.mul <= 14
    assert result.op_count.add <= 14

    # The paper's building blocks must all be discovered.
    grounds = set(result.registry.ground.values())
    assert P("x + y") in grounds, "d1 = x + y not found"
    assert P("x - y") in grounds, "d2 = x - y not found"
    # d3 = x(x-1)y(y-1) appears either as a registry block or as a final
    # CSE block of the decomposition; check the decomposition expansion.
    from repro.expr.ast import expr_to_polynomial

    d3 = P("x^2*y^2 - x^2*y - x*y^2 + x*y")
    block_grounds = {
        expr_to_polynomial(expr, result.decomposition.blocks).trim()
        for expr in result.decomposition.blocks.values()
    }
    assert d3 in block_grounds or d3 in grounds, "d3 = x(x-1)y(y-1) not found"
