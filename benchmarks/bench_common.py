"""Shared helpers for the paper-reproduction benchmarks.

Kept outside ``conftest.py`` so bench modules can import it by name
regardless of how pytest assembles ``sys.path``.

The "proposed" method runs through the batch engine
(:class:`repro.engine.BatchEngine`), so benchmark reruns hit the
content-hash cache and the harness exposes the same knobs as
``python -m repro batch``:

* ``REPRO_BENCH_WORKERS`` — process pool size for cold runs (default 1),
* ``REPRO_BENCH_CACHE_DIR`` — on-disk cache directory; set it to make
  warm-cache reruns measurable across processes.
"""

from __future__ import annotations

import os

from repro import compare_methods, method_outcome
from repro.core import SynthesisOptions
from repro.engine import BatchEngine, BatchJob
from repro.suite import get_system

_REPORTS: list[tuple[str, list[str]]] = []


def record_table(title: str, lines: list[str]) -> None:
    """Register a regenerated paper table for the end-of-run summary."""
    _REPORTS.append((title, list(lines)))


def recorded_tables() -> list[tuple[str, list[str]]]:
    return list(_REPORTS)


_COMPARISON_CACHE: dict[str, dict] = {}

#: Search knobs per system: the 16/25-polynomial SG rows get a smaller
#: descent budget so the whole Table 14.3 regeneration stays tractable.
_OPTIONS: dict[str, SynthesisOptions] = {
    "SG 4X2": SynthesisOptions(descent_budget=60),
    "SG 4X3": SynthesisOptions(descent_budget=40),
    "SG 5X2": SynthesisOptions(descent_budget=40),
    "SG 5X3": SynthesisOptions(descent_budget=30),
}

ENGINE = BatchEngine(
    workers=int(os.environ.get("REPRO_BENCH_WORKERS", "1")),
    cache_dir=os.environ.get("REPRO_BENCH_CACHE_DIR"),
)


def bench_options(name: str) -> SynthesisOptions:
    """The search knobs a named system is benchmarked with."""
    return _OPTIONS.get(name, SynthesisOptions())


def synthesize_named(names: list[str]):
    """Batch the proposed flow over named systems; returns the BatchReport."""
    return ENGINE.run(
        BatchJob(system=get_system(name), options=bench_options(name), name=name)
        for name in names
    )


def compare_system(name: str) -> dict:
    """Cached compare_methods() over a named benchmark system.

    Baselines run in-process (they are cheap); the proposed flow goes
    through the batch engine so repeated table regenerations and
    multi-bench runs share one cached synthesis per system.
    """
    if name not in _COMPARISON_CACHE:
        system = get_system(name)
        options = bench_options(name)
        outcomes = compare_methods(
            system, options, methods=("direct", "horner", "factor+cse")
        )
        [result] = synthesize_named([name]).results
        if result.error is not None:
            raise RuntimeError(f"engine failed on {name}: {result.error}")
        assert result.decomposition is not None
        outcomes["proposed"] = method_outcome(
            "proposed", result.decomposition, system
        )
        _COMPARISON_CACHE[name] = outcomes
    return _COMPARISON_CACHE[name]
