"""Shared helpers for the paper-reproduction benchmarks.

Kept outside ``conftest.py`` so bench modules can import it by name
regardless of how pytest assembles ``sys.path``.

The "proposed" method runs through the batch engine
(:class:`repro.engine.BatchEngine`), so benchmark reruns hit the
content-hash cache and the harness exposes the same knobs as
``python -m repro batch``:

* ``REPRO_BENCH_WORKERS`` — process pool size for cold runs (default 1),
* ``REPRO_BENCH_CACHE_DIR`` — on-disk cache directory; set it to make
  warm-cache reruns measurable across processes.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import asdict

from repro import RunConfig, compare_methods, method_outcome
from repro.core import SynthesisOptions
from repro.engine import BatchEngine, BatchJob
from repro.obs import env_events_settings, env_trace_settings
from repro.suite import get_system

_REPORTS: list[tuple[str, list[str]]] = []


def record_table(title: str, lines: list[str]) -> None:
    """Register a regenerated paper table for the end-of-run summary."""
    _REPORTS.append((title, list(lines)))


def recorded_tables() -> list[tuple[str, list[str]]]:
    return list(_REPORTS)


_COMPARISON_CACHE: dict[str, dict] = {}

#: Search knobs per system: the 16/25-polynomial SG rows get a smaller
#: descent budget so the whole Table 14.3 regeneration stays tractable.
_OPTIONS: dict[str, SynthesisOptions] = {
    "SG 4X2": SynthesisOptions(descent_budget=60),
    "SG 4X3": SynthesisOptions(descent_budget=40),
    "SG 5X2": SynthesisOptions(descent_budget=40),
    "SG 5X3": SynthesisOptions(descent_budget=30),
}

ENGINE = BatchEngine(
    RunConfig(
        workers=int(os.environ.get("REPRO_BENCH_WORKERS", "1")),
        cache_dir=os.environ.get("REPRO_BENCH_CACHE_DIR"),
    )
)


def bench_options(name: str) -> SynthesisOptions:
    """The search knobs a named system is benchmarked with."""
    return _OPTIONS.get(name, SynthesisOptions())


def synthesize_named(names: list[str]):
    """Batch the proposed flow over named systems; returns the BatchReport."""
    return ENGINE.run(
        BatchJob(system=get_system(name), options=bench_options(name), name=name)
        for name in names
    )


def compare_system(name: str) -> dict:
    """Cached compare_methods() over a named benchmark system.

    Baselines run in-process (they are cheap); the proposed flow goes
    through the batch engine so repeated table regenerations and
    multi-bench runs share one cached synthesis per system.
    """
    if name not in _COMPARISON_CACHE:
        system = get_system(name)
        options = bench_options(name)
        outcomes = compare_methods(
            system, options, methods=("direct", "horner", "factor+cse")
        )
        started = time.perf_counter()
        [result] = synthesize_named([name]).results
        wall = time.perf_counter() - started
        if result.error is not None:
            raise RuntimeError(f"engine failed on {name}: {result.error}")
        assert result.decomposition is not None
        outcomes["proposed"] = method_outcome(
            "proposed", result.decomposition, system
        )
        _COMPARISON_CACHE[name] = outcomes
        _PERF[name] = {
            "wall_seconds": round(wall, 6),
            "synth_seconds": round(result.seconds, 6),
            "cache_hit": result.cache_hit,
            "options": asdict(options),
            "methods": {
                method: {
                    "mul": outcome.op_count.mul,
                    "add": outcome.op_count.add,
                    "area": round(outcome.hardware.area, 2),
                    "delay": round(outcome.hardware.delay, 2),
                }
                for method, outcome in outcomes.items()
            },
        }
    return _COMPARISON_CACHE[name]


# ----------------------------------------------------------------------
# The machine-readable perf-trajectory baseline (BENCH_PR*.json)
# ----------------------------------------------------------------------

_PERF: dict[str, dict] = {}

#: Label stamped into the snapshot; bump alongside the checked-in file
#: name.  ``REPRO_BENCH_LABEL`` overrides it for side-channel snapshots
#: (e.g. the CI obs-overhead gate's "OBS" run).
BASELINE_LABEL = os.environ.get("REPRO_BENCH_LABEL", "PR10")


def _git_sha() -> str | None:
    """The repository HEAD this snapshot was measured at, if discoverable."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def perf_snapshot() -> dict:
    """Everything a future PR compares itself against, as one JSON-able dict.

    Besides the per-benchmark numbers, the snapshot records the exact
    measurement conditions: the engine's active :class:`RunConfig`, the
    git commit, and whether ambient tracing was on (an obs-enabled run
    measures instrumented code and must not be compared against a
    zero-cost-path baseline).
    """
    return {
        "kind": "bench-baseline",
        "baseline": BASELINE_LABEL,
        "workers": ENGINE.workers,
        "cache": asdict(ENGINE.cache.stats),
        "config": ENGINE.config.as_dict(),
        "git_sha": _git_sha(),
        "obs_enabled": env_trace_settings()[0] or env_events_settings()[0],
        "benchmarks": {name: _PERF[name] for name in sorted(_PERF)},
    }


def write_perf_baseline(path: str) -> bool:
    """Write the baseline JSON; returns False when no benchmark ran."""
    snapshot = perf_snapshot()
    if not snapshot["benchmarks"]:
        return False
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return True
