"""Shared helpers for the paper-reproduction benchmarks.

Kept outside ``conftest.py`` so bench modules can import it by name
regardless of how pytest assembles ``sys.path``.
"""

from __future__ import annotations

from repro import compare_methods
from repro.core import SynthesisOptions
from repro.suite import get_system

_REPORTS: list[tuple[str, list[str]]] = []


def record_table(title: str, lines: list[str]) -> None:
    """Register a regenerated paper table for the end-of-run summary."""
    _REPORTS.append((title, list(lines)))


def recorded_tables() -> list[tuple[str, list[str]]]:
    return list(_REPORTS)


_COMPARISON_CACHE: dict[str, dict] = {}

#: Search knobs per system: the 16/25-polynomial SG rows get a smaller
#: descent budget so the whole Table 14.3 regeneration stays tractable.
_OPTIONS: dict[str, SynthesisOptions] = {
    "SG 4X2": SynthesisOptions(descent_budget=60),
    "SG 4X3": SynthesisOptions(descent_budget=40),
    "SG 5X2": SynthesisOptions(descent_budget=40),
    "SG 5X3": SynthesisOptions(descent_budget=30),
}


def compare_system(name: str) -> dict:
    """Cached compare_methods() over a named benchmark system."""
    if name not in _COMPARISON_CACHE:
        system = get_system(name)
        options = _OPTIONS.get(name, SynthesisOptions())
        _COMPARISON_CACHE[name] = compare_methods(system, options)
    return _COMPARISON_CACHE[name]
