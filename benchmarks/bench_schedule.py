"""Extension bench — latency under resource constraints.

High-level synthesis context for the paper's results: with a limited
number of functional units, fewer multiplications translate into fewer
schedule cycles.  This bench list-schedules every method's dataflow graph
onto a small datapath (1 multiplier / 2 adder-class units) and reports
the latency; the proposed method should never need more cycles than the
factorization+CSE baseline on multiplier-bound systems.
"""

import pytest

from repro.dfg import build_dfg, list_schedule
from repro.suite import get_system

from bench_common import compare_system, record_table

SYSTEMS = ("Table 14.1", "Quad", "Mibench", "MVCS")
RESOURCES = {"mul": 1, "add": 2}

_ROWS: dict[str, dict[str, int]] = {}


@pytest.mark.parametrize("name", SYSTEMS)
def test_schedule_row(name, benchmark):
    system = get_system(name)

    def run():
        outcomes = compare_system(name)
        latencies = {}
        for method, outcome in outcomes.items():
            graph = build_dfg(outcome.decomposition, system.signature)
            latencies[method] = list_schedule(graph, RESOURCES).latency
        return latencies

    latencies = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS[name] = latencies
    assert latencies["proposed"] <= latencies["direct"]


def test_schedule_summary(recorder, benchmark):
    if len(_ROWS) < len(SYSTEMS):
        pytest.skip("schedule rows did not all run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    methods = ("direct", "horner", "factor+cse", "proposed")
    lines = [
        f"resources: {RESOURCES}",
        f"{'system':12s}" + "".join(f"{m:>12s}" for m in methods),
    ]
    for name in SYSTEMS:
        row = f"{name:12s}"
        for method in methods:
            row += f"{_ROWS[name][method]:12d}"
        lines.append(row)
    record_table("Extension — list-scheduled latency (cycles)", lines)
