"""Extension bench — low-power synthesis (the paper's future work).

The conclusion of the paper proposes investigating the algebraic
transformations for low-power synthesis.  This bench measures the
switched-capacitance estimate of every method on the Table 14.3 systems'
small rows and checks the expected shape: block sharing reduces dynamic
power along with area (the same multipliers that dominate area dominate
switched capacitance).
"""

import pytest

from repro.cost import estimate_power
from repro.suite import get_system

from bench_common import compare_system, record_table

SYSTEMS = ("Table 14.1", "Quad", "Mibench", "MVCS")

_ROWS: dict[str, dict[str, float]] = {}


@pytest.mark.parametrize("name", SYSTEMS)
def test_power_row(name, benchmark):
    system = get_system(name)

    def run():
        outcomes = compare_system(name)
        return {
            method: estimate_power(
                outcome.decomposition, system.signature
            ).switched_capacitance
            for method, outcome in outcomes.items()
        }

    powers = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS[name] = powers
    assert powers["proposed"] <= powers["direct"]
    assert powers["proposed"] <= powers["factor+cse"] * 1.0001


def test_power_summary(recorder, benchmark):
    if len(_ROWS) < len(SYSTEMS):
        pytest.skip("power rows did not all run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    methods = ("direct", "horner", "factor+cse", "proposed")
    lines = [f"{'system':12s}" + "".join(f"{m:>12s}" for m in methods)]
    for name in SYSTEMS:
        row = f"{name:12s}"
        for method in methods:
            row += f"{_ROWS[name][method]:12.0f}"
        lines.append(row)
    record_table("Extension — switched capacitance (future-work power study)", lines)
