"""Regenerate Table 14.3 — the main experimental comparison.

For each of the eight DSP systems: area and delay of the
factorization+CSE baseline [13] vs the proposed integrated flow, plus the
percentage improvements.  The paper reports Design Compiler library units;
we report gate-equivalents from the technology model (DESIGN.md
substitution table), so *shape* is the reproduction target:

* the proposed method never loses area on any row,
* the average area improvement is in the tens of percent,
* delay is not consistently improved (area is bought with delay on
  several rows — the paper's trade-off).

Paper improvements per row (area%, delay%): SG 3X2 (50, 21.3),
SG 4X2 (55.9, -24.1), SG 4X3 (19.2, -16.3), SG 5X2 (52.3, -13.9),
SG 5X3 (54.9, -20.7), Quad (16, -9.5), Mibench (58.6, -3.7),
MVCS (28.4, -32); average area improvement ~42%.
"""

import pytest

from repro import improvement
from repro.suite import TABLE_14_3_SYSTEMS, get_system

from bench_common import compare_system, record_table

PAPER_AREA_IMPROVEMENT = {
    "SG 3X2": 50.0,
    "SG 4X2": 55.9,
    "SG 4X3": 19.2,
    "SG 5X2": 52.3,
    "SG 5X3": 54.9,
    "Quad": 16.0,
    "Mibench": 58.6,
    "MVCS": 28.4,
}

_RESULTS: dict[str, tuple[float, float]] = {}


@pytest.mark.parametrize("name", TABLE_14_3_SYSTEMS)
def test_table_14_3_row(name, benchmark):
    system = get_system(name)

    outcome = benchmark.pedantic(lambda: compare_system(name), rounds=1, iterations=1)
    base = outcome["factor+cse"].hardware
    prop = outcome["proposed"].hardware
    area_improvement = improvement(base.area, prop.area)
    delay_improvement = improvement(base.delay, prop.delay)
    _RESULTS[name] = (area_improvement, delay_improvement)

    # Shape check per row: the proposed method never loses area.
    assert prop.area <= base.area * 1.0001, (
        f"{name}: proposed area {prop.area} worse than baseline {base.area}"
    )
    # Characteristics sanity (ties the row to the paper's table).
    assert system.num_polys >= 1


def test_table_14_3_summary(recorder, benchmark):
    # Runs after the rows thanks to file ordering; tolerate partial runs.
    if len(_RESULTS) < len(TABLE_14_3_SYSTEMS):
        pytest.skip("row benches did not all run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'system':9s} {'var/deg/m':>9s} {'#p':>3s} "
        f"{'base area':>10s} {'base dly':>9s} {'prop area':>10s} {'prop dly':>9s} "
        f"{'area%':>7s} {'delay%':>7s} {'paper a%':>9s}"
    ]
    total = 0.0
    for name in TABLE_14_3_SYSTEMS:
        system = get_system(name)
        outcome = compare_system(name)
        base = outcome["factor+cse"].hardware
        prop = outcome["proposed"].hardware
        area_improvement, delay_improvement = _RESULTS[name]
        total += area_improvement
        lines.append(
            f"{name:9s} {system.characteristics():>9s} {system.num_polys:3d} "
            f"{base.area:10.0f} {base.delay:9.0f} {prop.area:10.0f} {prop.delay:9.0f} "
            f"{area_improvement:7.1f} {delay_improvement:7.1f} "
            f"{PAPER_AREA_IMPROVEMENT[name]:9.1f}"
        )
    average = total / len(TABLE_14_3_SYSTEMS)
    lines.append(f"{'average area improvement':40s} {average:7.1f}%   (paper: ~42%)")
    record_table("Table 14.3 — proposed vs factorization/CSE", lines)

    # Shape: substantial average area improvement.
    assert average > 10.0, f"average area improvement too small: {average:.1f}%"
