"""Compare a fresh benchmark snapshot against prior baselines.

The bench suites write ``BENCH_PR9.json`` (see ``conftest.py``); this
tool diffs it against one or more checked-in baselines and fails on
regressions, so CI can gate perf the way tests gate correctness::

    python benchmarks/bench_compare.py \
        --current benchmarks/BENCH_PR9.json \
        --against benchmarks/BENCH_PR8.json \
        --max-regress 0.10

With several ``--against`` files the comparison runs against the *best*
prior number per benchmark (min wall seconds / min op total across the
baselines), so a PR cannot look good merely by diffing against the
slowest historical snapshot.

Two gates:

* ``--max-regress`` (default 0.10) — allowed fractional wall-clock
  slowdown per benchmark.  Wall time is machine-noisy, hence a band.
* ``--max-op-regress`` (default 0.05) — allowed fractional increase of
  the proposed method's total operator count (MUL+ADD).  Op counts are
  deterministic; the small band absorbs greedy tie-break drift between
  algorithm revisions (the never-worse-than-direct oracle in the fuzz
  harness guards correctness separately).

Benchmarks present only in the current snapshot are reported as new and
never gate; benchmarks missing from the current snapshot fail the run
unless ``--allow-missing`` (a shrunk suite must be an explicit choice).
Exit codes: 0 ok, 1 regression (or missing benchmark), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load_snapshot(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("kind") != "bench-baseline":
        raise ValueError(f"{path}: not a bench-baseline payload")
    return data


def proposed_ops(entry: dict) -> int | None:
    method = entry.get("methods", {}).get("proposed")
    if not method:
        return None
    return int(method["mul"]) + int(method["add"])


def best_prior(baselines: list[dict], name: str) -> dict | None:
    """The toughest prior numbers for one benchmark across all baselines."""
    walls: list[float] = []
    ops: list[int] = []
    labels: list[str] = []
    for snapshot in baselines:
        entry = snapshot.get("benchmarks", {}).get(name)
        if entry is None:
            continue
        walls.append(float(entry["wall_seconds"]))
        labels.append(str(snapshot.get("baseline", "?")))
        entry_ops = proposed_ops(entry)
        if entry_ops is not None:
            ops.append(entry_ops)
    if not walls:
        return None
    return {
        "wall_seconds": min(walls),
        "ops": min(ops) if ops else None,
        "labels": labels,
    }


def compare(
    current: dict,
    baselines: list[dict],
    max_regress: float,
    max_op_regress: float,
    allow_missing: bool,
) -> tuple[list[dict], list[str]]:
    """Per-benchmark delta rows plus the list of failure messages."""
    rows: list[dict] = []
    failures: list[str] = []
    current_benchmarks = current.get("benchmarks", {})
    baseline_names = sorted(
        {name for snapshot in baselines for name in snapshot.get("benchmarks", {})}
    )

    for name in baseline_names:
        prior = best_prior(baselines, name)
        assert prior is not None
        entry = current_benchmarks.get(name)
        if entry is None:
            if not allow_missing:
                failures.append(f"{name}: missing from the current snapshot")
            rows.append({"name": name, "status": "missing"})
            continue
        wall = float(entry["wall_seconds"])
        wall_delta = (wall - prior["wall_seconds"]) / prior["wall_seconds"]
        row = {
            "name": name,
            "status": "ok",
            "wall_seconds": wall,
            "baseline_wall_seconds": prior["wall_seconds"],
            "wall_delta": wall_delta,
        }
        if wall_delta > max_regress:
            row["status"] = "regressed"
            failures.append(
                f"{name}: wall {wall:.3f}s vs best prior "
                f"{prior['wall_seconds']:.3f}s ({wall_delta:+.1%} > "
                f"{max_regress:.0%} allowed)"
            )
        ops = proposed_ops(entry)
        if ops is not None and prior["ops"] is not None:
            op_delta = (ops - prior["ops"]) / prior["ops"]
            row["ops"] = ops
            row["baseline_ops"] = prior["ops"]
            row["op_delta"] = op_delta
            if op_delta > max_op_regress:
                row["status"] = "regressed"
                failures.append(
                    f"{name}: proposed ops {ops} vs best prior {prior['ops']} "
                    f"({op_delta:+.1%} > {max_op_regress:.0%} allowed)"
                )
        rows.append(row)

    for name in sorted(set(current_benchmarks) - set(baseline_names)):
        rows.append({"name": name, "status": "new"})
    return rows, failures


def format_rows(rows: list[dict]) -> str:
    lines = [
        f"{'benchmark':14s} {'wall':>9s} {'prior':>9s} {'delta':>8s} "
        f"{'ops':>5s} {'prior':>5s} status"
    ]
    for row in rows:
        if row["status"] in ("missing", "new"):
            lines.append(f"{row['name']:14s} {'-':>9s} {'-':>9s} {'-':>8s} "
                         f"{'-':>5s} {'-':>5s} {row['status']}")
            continue
        ops = str(row.get("ops", "-"))
        prior_ops = str(row.get("baseline_ops", "-"))
        lines.append(
            f"{row['name']:14s} {row['wall_seconds']:9.3f} "
            f"{row['baseline_wall_seconds']:9.3f} {row['wall_delta']:+8.1%} "
            f"{ops:>5s} {prior_ops:>5s} {row['status']}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff a benchmark snapshot against prior baselines"
    )
    default_current = os.path.join(os.path.dirname(__file__), "BENCH_PR9.json")
    parser.add_argument(
        "--current",
        default=default_current,
        help="snapshot to judge (default: benchmarks/BENCH_PR9.json)",
    )
    parser.add_argument(
        "--against",
        action="append",
        required=True,
        help="baseline JSON to compare against (repeatable; the best "
        "prior number per benchmark wins)",
    )
    parser.add_argument(
        "--max-regress",
        type=float,
        default=0.10,
        help="allowed fractional wall-clock slowdown (default: 0.10)",
    )
    parser.add_argument(
        "--max-op-regress",
        type=float,
        default=0.05,
        help="allowed fractional op-count increase (default: 0.05)",
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="do not fail when a baseline benchmark is absent from the "
        "current snapshot",
    )
    parser.add_argument(
        "--expect-obs",
        action="store_true",
        help="require the current snapshot to be an observability-enabled "
        "run (the obs-overhead gate: instrumented wall vs. a zero-cost "
        "baseline, bounded by --max-regress)",
    )
    parser.add_argument(
        "--out", help="also write the delta rows as JSON to this file"
    )
    args = parser.parse_args(argv)

    try:
        current = load_snapshot(args.current)
        baselines = [load_snapshot(path) for path in args.against]
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.expect_obs and not current.get("obs_enabled"):
        print(
            "error: --expect-obs requires an observability-enabled current "
            "snapshot (run with REPRO_TRACE=1 / REPRO_EVENTS=1)",
            file=sys.stderr,
        )
        return 2
    if current.get("obs_enabled") and not args.expect_obs:
        print(
            "warning: the current snapshot was measured with tracing "
            "enabled; wall times include instrumentation overhead",
            file=sys.stderr,
        )

    rows, failures = compare(
        current,
        baselines,
        max_regress=args.max_regress,
        max_op_regress=args.max_op_regress,
        allow_missing=args.allow_missing,
    )
    print(format_rows(rows))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "kind": "bench-delta",
                    "current": current.get("baseline"),
                    "against": [b.get("baseline") for b in baselines],
                    "max_regress": args.max_regress,
                    "max_op_regress": args.max_op_regress,
                    "rows": rows,
                    "failures": failures,
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
    if failures:
        print()
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
