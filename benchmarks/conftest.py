"""Pytest wiring for the paper-reproduction benchmarks.

Bench modules register regenerated paper tables through
:mod:`bench_common`; the ``pytest_terminal_summary`` hook below prints
them all after the run, so the rows are visible without ``-s``.
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from bench_common import record_table, recorded_tables, write_perf_baseline  # noqa: E402


def pytest_sessionfinish(session, exitstatus):
    """Persist the machine-readable perf baseline (see BENCH_PR10.json).

    ``REPRO_BENCH_JSON`` overrides the output path; nothing is written
    when no benchmark exercised :func:`bench_common.compare_system`.
    Compare the result against a prior baseline with ``bench_compare.py``.
    """
    path = os.environ.get("REPRO_BENCH_JSON") or os.path.join(
        os.path.dirname(__file__), "BENCH_PR10.json"
    )
    write_perf_baseline(path)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tables = recorded_tables()
    if not tables:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "regenerated paper tables")
    for title, lines in tables:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {title}")
        for line in lines:
            terminalreporter.write_line(line)


@pytest.fixture
def recorder():
    """Fixture handing benches the table recorder."""
    return record_table
