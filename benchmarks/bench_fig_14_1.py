"""Regenerate Figure 14.1 — the representation-list data structure.

The figure shows, for the Table 14.2 system, how each polynomial's list of
alternative representations grows through the phases (a: expanded /
canonical / square-free; b: after CCE and Cube_Ex / division; c: the
chosen combination).  This bench prints the per-polynomial list sizes and
tags at the end of the flow plus the chosen indices, and checks the
structural claims: every polynomial retains its original representation,
lists strictly grow past phase (a), and the chosen combination is
validated.

It also regenerates the Section 14.3.1 canonical-sharing example that
motivates the canonical representations in the lists.
"""

from repro.core import synthesize
from repro.rings import to_canonical
from repro.suite import section_14_3_1_system, table_14_2_system

from bench_common import record_table


def _run():
    system = table_14_2_system()
    return synthesize(list(system.polys), system.signature)


def test_fig_14_1_representation_lists(benchmark, recorder):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = []
    for index, reps in enumerate(result.representation_lists):
        chosen = result.chosen[index]
        lines.append(f"P{index + 1}: {len(reps)} representations")
        for j, rep in enumerate(reps):
            marker = " <== chosen" if j == chosen else ""
            lines.append(f"    [{j}] {rep.tag}{marker}")
    record_table("Fig. 14.1 — representation lists (Table 14.2 system)", lines)

    for index, reps in enumerate(result.representation_lists):
        tags = [rep.tag for rep in reps]
        assert "original" in tags, f"P{index+1} lost its original form"
        # The flow must have generated alternatives beyond the original
        # for every polynomial of this example.
        assert len(reps) >= 2, f"P{index+1} has no alternative representations"
    assert len(result.chosen) == 4


def test_fig_14_1_canonical_sharing(benchmark, recorder):
    system = section_14_3_1_system()

    def forms():
        return [to_canonical(p, system.signature) for p in system.polys]

    cf, cg = benchmark.pedantic(forms, rounds=1, iterations=1)
    lines = [
        f"F = {system.polys[0]}",
        f"  canonical: {cf}",
        f"G = {system.polys[1]}",
        f"  canonical: {cg}",
    ]
    record_table("Sec. 14.3.1 — canonical forms expose shared Y_k blocks", lines)

    # Paper: F = 4 Y2(x) Y2(y) + 5 Y2(z) Y1(x), G = 7 Y2(x) Y2(z) + 3 Y2(y) Y1(x)
    assert dict(cf.coefficients) == {(2, 2, 0): 4, (1, 0, 2): 5}
    assert dict(cg.coefficients) == {(2, 0, 2): 7, (1, 2, 0): 3}
    # The two forms share the factors Y2(x) (and the Y2 pattern on y/z).
    f_degrees = {k for k, _ in cf.coefficients}
    g_degrees = {k for k, _ in cg.coefficients}
    assert any(k[0] == 2 for k in f_degrees) and any(k[0] == 2 for k in g_degrees)
