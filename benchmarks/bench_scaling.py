"""Scaling bench — flow cost vs system size (DESIGN.md index).

Sweeps the Savitzky-Golay family over window sizes and records synthesis
runtime, combinations scored, and the area ratio vs the baseline.  Shape:
runtime grows with the window (more polynomials, more representations)
while the relative area win persists — the search heuristics (family
seeds, budgeted descent) keep the 25-polynomial rows tractable.
"""

import time

import pytest

from repro.baselines import factor_cse_decomposition
from repro.core import SynthesisOptions, synthesize
from repro.cost import estimate_decomposition
from repro.suite import savitzky_golay_system

from bench_common import record_table

WINDOWS = (2, 3, 4)

_ROWS: list[tuple[int, float, int, float, float]] = []


@pytest.mark.parametrize("window", WINDOWS)
def test_scaling_window(window, benchmark):
    system = savitzky_golay_system(window, 2)
    options = SynthesisOptions(descent_budget=60)

    def run():
        start = time.perf_counter()
        result = synthesize(list(system.polys), system.signature, options)
        elapsed = time.perf_counter() - start
        return result, elapsed

    result, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    proposed = estimate_decomposition(result.decomposition, system.signature)
    baseline = estimate_decomposition(
        factor_cse_decomposition(list(system.polys)), system.signature
    )
    _ROWS.append(
        (window, elapsed, result.combinations_scored, baseline.area, proposed.area)
    )
    assert proposed.area <= baseline.area * 1.0001


def test_scaling_summary(recorder, benchmark):
    if len(_ROWS) < len(WINDOWS):
        pytest.skip("scaling rows did not all run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'window':>6s} {'polys':>6s} {'time/s':>8s} {'scored':>7s} "
        f"{'base area':>10s} {'prop area':>10s}"
    ]
    for window, elapsed, scored, base_area, prop_area in sorted(_ROWS):
        lines.append(
            f"{window:6d} {window * window:6d} {elapsed:8.2f} {scored:7d} "
            f"{base_area:10.0f} {prop_area:10.0f}"
        )
    record_table("Scaling — SG family sweep (degree 2)", lines)
