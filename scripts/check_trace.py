#!/usr/bin/env python
"""Validate a Chrome trace-event JSON file produced by ``repro``.

The CI smoke check: loads the file, runs the bundled schema validator
(:mod:`repro.obs.validate`), and optionally enforces a minimum span
nesting depth and the presence of stitched worker spans (a ``batch``
root with ``job:*`` children, as ``repro batch --trace-out`` with
``--workers 2`` must produce).

Exit status: 0 when every check passes, 1 otherwise.

Usage::

    python scripts/check_trace.py trace.json --min-depth 3 --require-stitched
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Allow running from a checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs.validate import (  # noqa: E402
    chrome_trace_depth,
    event_names,
    validate_chrome_trace,
    validate_event_jsonl,
    validate_job_lifecycles,
)


def check_trace(
    path: str, min_depth: int = 0, require_stitched: bool = False
) -> list[str]:
    """Every failed check as a message (empty = the file passed)."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"cannot load {path}: {exc}"]
    problems = validate_chrome_trace(document)
    if problems:
        return [f"{path}: {p}" for p in problems]
    depth = chrome_trace_depth(document)
    if depth < min_depth:
        problems.append(
            f"{path}: span depth {depth} is below the required {min_depth}"
        )
    if require_stitched:
        names = event_names(document)
        if "batch" not in names:
            problems.append(f"{path}: no 'batch' span found")
        if not any(name.startswith("job:") for name in names):
            problems.append(f"{path}: no stitched 'job:*' worker spans found")
    return problems


def check_events(path: str, require_lifecycle: bool = False) -> list[str]:
    """Validate an event-stream JSONL file.

    Checks the schema and the monotonic sequence order, then the per-job
    lifecycle ordering — requeue-aware, so the durable service's
    lease-expiry redeliveries (``job_requeued`` followed by a second
    ``job_start``) validate cleanly instead of being flagged as
    duplicate ``job`` events.  With ``require_lifecycle`` the file must
    additionally contain at least one ``job_queued``/``job_leased``
    event (the service-smoke assertion that the store was exercised).
    """
    try:
        content = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        return [f"cannot load {path}: {exc}"]
    if not content.strip():
        return [f"{path}: event stream is empty"]
    problems = list(validate_event_jsonl(content))
    entries = []
    for line in content.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue  # already reported by validate_event_jsonl
        if isinstance(entry, dict):
            entries.append(entry)
    problems += validate_job_lifecycles(entries)
    if require_lifecycle:
        kinds = {entry.get("event") for entry in entries}
        if not kinds & {"job_queued", "job_leased"}:
            problems.append(
                "no service lifecycle events (job_queued/job_leased) found"
            )
    return [f"{path}: {p}" for p in problems]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "trace",
        nargs="?",
        help="Chrome trace-event JSON file to check (optional when only "
        "--events is being validated)",
    )
    parser.add_argument(
        "--min-depth",
        type=int,
        default=0,
        help="require at least this span nesting depth",
    )
    parser.add_argument(
        "--require-stitched",
        action="store_true",
        help="require a 'batch' span with stitched 'job:*' worker spans",
    )
    parser.add_argument(
        "--events",
        help="also validate this event-stream JSONL file "
        "(schema + strictly increasing sequence numbers + per-job "
        "lifecycle ordering)",
    )
    parser.add_argument(
        "--require-job-lifecycle",
        action="store_true",
        help="require service lifecycle events (job_queued/job_leased) "
        "in the --events file",
    )
    args = parser.parse_args(argv)
    if not args.trace and not args.events:
        parser.error("nothing to check: give a trace file and/or --events")
    problems = []
    if args.trace:
        problems += check_trace(args.trace, args.min_depth, args.require_stitched)
    if args.events:
        problems += check_events(args.events, args.require_job_lifecycle)
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    if not problems:
        checked = []
        if args.trace:
            checked.append(f"{args.trace}: valid Chrome trace")
        if args.events:
            checked.append(f"{args.events}: valid event stream")
        print("; ".join(checked))
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
