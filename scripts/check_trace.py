#!/usr/bin/env python
"""Validate a Chrome trace-event JSON file produced by ``repro``.

The CI smoke check: loads the file, runs the bundled schema validator
(:mod:`repro.obs.validate`), and optionally enforces a minimum span
nesting depth and the presence of stitched worker spans (a ``batch``
root with ``job:*`` children, as ``repro batch --trace-out`` with
``--workers 2`` must produce).

Exit status: 0 when every check passes, 1 otherwise.

Usage::

    python scripts/check_trace.py trace.json --min-depth 3 --require-stitched
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Allow running from a checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs.validate import (  # noqa: E402
    chrome_trace_depth,
    event_names,
    validate_chrome_trace,
    validate_event_jsonl,
)


def check_trace(
    path: str, min_depth: int = 0, require_stitched: bool = False
) -> list[str]:
    """Every failed check as a message (empty = the file passed)."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"cannot load {path}: {exc}"]
    problems = validate_chrome_trace(document)
    if problems:
        return [f"{path}: {p}" for p in problems]
    depth = chrome_trace_depth(document)
    if depth < min_depth:
        problems.append(
            f"{path}: span depth {depth} is below the required {min_depth}"
        )
    if require_stitched:
        names = event_names(document)
        if "batch" not in names:
            problems.append(f"{path}: no 'batch' span found")
        if not any(name.startswith("job:") for name in names):
            problems.append(f"{path}: no stitched 'job:*' worker spans found")
    return problems


def check_events(path: str) -> list[str]:
    """Validate an event-stream JSONL file (schema + monotonic order)."""
    try:
        content = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        return [f"cannot load {path}: {exc}"]
    if not content.strip():
        return [f"{path}: event stream is empty"]
    return [f"{path}: {p}" for p in validate_event_jsonl(content)]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace-event JSON file to check")
    parser.add_argument(
        "--min-depth",
        type=int,
        default=0,
        help="require at least this span nesting depth",
    )
    parser.add_argument(
        "--require-stitched",
        action="store_true",
        help="require a 'batch' span with stitched 'job:*' worker spans",
    )
    parser.add_argument(
        "--events",
        help="also validate this event-stream JSONL file "
        "(schema + strictly increasing sequence numbers)",
    )
    args = parser.parse_args(argv)
    problems = check_trace(args.trace, args.min_depth, args.require_stitched)
    if args.events:
        problems += check_events(args.events)
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    if not problems:
        checked = f"{args.trace}: valid Chrome trace"
        if args.events:
            checked += f"; {args.events}: valid event stream"
        print(checked)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
