#!/usr/bin/env python
"""Differential smoke check: dag-mode vs rectangle-mode synthesis.

The CI gate for the DAG-scored combination search: a fixed-seed stream
of generated systems runs through the integrated flow twice — once with
``cse_mode="dag"`` (the shipped default) and once with
``cse_mode="rectangle"`` (the pre-DAG per-combination scorer) — and for
every case both results must

* verify against the exact canonical-form oracle
  (:func:`repro.verify.check_decompositions`), and
* cost no more estimated area than the direct sum-of-products
  (the flow's never-worse-than-direct guarantee, mode-independent).

A mismatch prints the offending case and exits 1.  The run is
deterministic per seed; the wall-clock budget truncates between cases so
the job is time-bounded on any runner.

Usage::

    python scripts/check_dag_diff.py --seed 7 --iterations 60 --time-budget 30
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

# Allow running from a checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core import SynthesisOptions, synthesize  # noqa: E402
from repro.cost import estimate_decomposition  # noqa: E402
from repro.fuzz.driver import specification  # noqa: E402
from repro.fuzz.generator import generate_case  # noqa: E402
from repro.verify import check_decompositions  # noqa: E402

#: Relative slack for the area checks (float sums, not exact integers).
_TOLERANCE = 1e-6


def check_case(case) -> list[str]:
    """Both modes on one case; returns human-readable problems."""
    system = case.system
    spec = specification(system)
    problems: list[str] = []
    areas: dict[str, float] = {}
    for mode in ("dag", "rectangle"):
        result = synthesize(
            list(system.polys),
            system.signature,
            SynthesisOptions(cse_mode=mode),
        )
        report = check_decompositions(
            result.decomposition, spec, system.signature, seed=case.seed
        )
        if not report:
            problems.append(
                f"{case.case_id} [{mode}]: decomposition differs from the "
                f"spec at output {report.failing_output} "
                f"(witness {dict(report.counterexample or {})})"
            )
            continue
        areas[mode] = estimate_decomposition(
            result.decomposition, system.signature
        ).area
    if len(areas) == 2:
        from repro.baselines.direct import direct_decomposition

        direct_area = estimate_decomposition(
            direct_decomposition(list(system.polys)), system.signature
        ).area
        for mode, area in sorted(areas.items()):
            if area > direct_area * (1.0 + _TOLERANCE):
                problems.append(
                    f"{case.case_id} [{mode}]: area {area:.1f} exceeds "
                    f"direct {direct_area:.1f}"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=7, help="case-stream seed")
    parser.add_argument(
        "--iterations", type=int, default=60, help="generated cases to try"
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=30.0,
        help="wall seconds; the sweep stops between cases when exhausted",
    )
    args = parser.parse_args(argv)

    start = time.monotonic()
    cases = 0
    problems: list[str] = []
    truncated = False
    for index in range(args.iterations):
        if time.monotonic() - start >= args.time_budget:
            truncated = True
            break
        case = generate_case(args.seed, index)
        problems.extend(check_case(case))
        cases += 1
    status = "TRUNCATED at the time budget" if truncated else "complete"
    print(
        f"dag-vs-rectangle: seed {args.seed}, {cases} case(s) ({status}), "
        f"{len(problems)} problem(s)"
    )
    for problem in problems:
        print(f"  {problem}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
