#!/usr/bin/env python
"""Replay and triage one fuzz-corpus reproducer file.

Given a JSON entry written by ``repro fuzz --corpus-dir`` (or committed
under ``tests/corpus/``), this prints everything a human needs to debug
it: the archived system (original and shrunk), each lineup method's
decomposition and estimated cost, the equivalence verdict against the
specification, and — when the entry carries an ``expect`` verdict —
whether the entry still holds.

Exit status: 0 when the replay matches the entry's expectation
(``fail`` entries still fail, ``pass`` entries stay clean), 1 otherwise.

Usage::

    python scripts/fuzz_triage.py tests/corpus/603857089b12.json
    python scripts/fuzz_triage.py repro.json --original --methods direct,horner
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Allow running from a checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.cost import estimate_decomposition  # noqa: E402
from repro.errors import Unsupported  # noqa: E402
from repro.fuzz import (  # noqa: E402
    FuzzConfig,
    entry_case,
    load_corpus_entry,
    method_labels,
    specification,
    verify_entry,
)
from repro.fuzz.driver import run_method  # noqa: E402
from repro.verify import check_decompositions  # noqa: E402


def _show_system(label: str, system) -> None:
    print(f"{label}:")
    print(f"  signature: {system.signature}")
    for i, poly in enumerate(system.polys):
        print(f"  out[{i}] = {poly}")


def triage(path: str, use_shrunk: bool, methods: tuple[str, ...] | None) -> int:
    entry = load_corpus_entry(path)
    print(f"corpus entry {entry['id']} "
          f"[{entry['shape']}] (seed {entry['seed']}#{entry['index']}), "
          f"expect={entry['expect']}")
    for finding in entry.get("findings", []):
        print(f"  archived: [{finding['kind']}] {finding['method']}: "
              f"{finding['detail']}")
    print()

    case = entry_case(entry, shrunk=use_shrunk)
    _show_system("shrunk reproducer" if use_shrunk and entry.get("shrunk")
                 else "original system", case.system)
    print()

    config = FuzzConfig(seed=int(entry.get("seed", 0)), methods=methods)
    spec = specification(case.system)
    signature = case.system.signature
    for label in method_labels(config):
        try:
            decomposition = run_method(label, case.system, config)
        except Unsupported as exc:
            print(f"{label}: SKIP (unsupported: {exc.reason})")
            continue
        except Exception as exc:  # noqa: BLE001 - triage shows crashes
            print(f"{label}: CRASH {type(exc).__name__}: {exc}")
            continue
        report = check_decompositions(decomposition, spec, signature)
        cost = estimate_decomposition(decomposition, signature)
        verdict = "OK" if report else f"MISMATCH ({report})"
        print(f"{label}: {verdict}")
        print(f"  cost: {cost}")
        for line in decomposition.summary().splitlines():
            print(f"  {line}")
        print()

    problems = verify_entry(load_corpus_entry(path), config)
    if problems:
        print("entry does NOT hold its verdict:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"entry holds its verdict ({entry['expect']})")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("entry", help="corpus JSON file to replay")
    parser.add_argument(
        "--original", action="store_true",
        help="replay the full original system instead of the shrunk one",
    )
    parser.add_argument(
        "--methods",
        help="comma-separated lineup subset (default: every method)",
    )
    args = parser.parse_args(argv)
    methods = (
        tuple(m.strip() for m in args.methods.split(",") if m.strip())
        if args.methods
        else None
    )
    return triage(args.entry, use_shrunk=not args.original, methods=methods)


if __name__ == "__main__":
    sys.exit(main())
