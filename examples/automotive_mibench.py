#!/usr/bin/env python3
"""The MiBench automotive kernel: why coefficient extraction matters.

Run:  python examples/automotive_mibench.py

The two outputs share the weighted-energy form (a + 2b + 3c)^2 — but only
*behind coefficients* (one output scales it by 4), so coefficient-literal
CSE sees nothing.  The example walks the paper's algebra step by step:
CCE (Algorithm 6) pulls the scaled group out, square-free factorization
turns it into the square of a linear block, and the final CSE merges the
blocks across outputs.
"""

from repro import compare_methods, improvement, synthesize_system
from repro.core import BlockRegistry, common_coefficient_extraction
from repro.factor import square_free_factorization
from repro.suite import mibench_system


def main() -> None:
    system = mibench_system()
    print(f"system: {system}")
    for index, poly in enumerate(system.polys, start=1):
        print(f"  P{index} = {poly}")
    print()

    # Step 1: CCE on the second output exposes the scaled energy group.
    registry = BlockRegistry(system.variables)
    outcome = common_coefficient_extraction(system.polys[1], registry)
    assert outcome is not None
    print("after CCE (Algorithm 6):")
    print(f"  P2 = {outcome.poly}")
    for name in outcome.extracted:
        print(f"  {name} = {registry.ground[name]}")
    print()

    # Step 2: square-free factorization of the extracted block reveals the
    # linear form.
    for name in outcome.extracted:
        ground = registry.ground[name]
        if not ground.is_linear:
            factorization = square_free_factorization(ground)
            print(f"square-free factorization of {name}: {factorization}")
    print()

    # Step 3: the integrated flow does all of this (plus division and the
    # final CSE) automatically.
    result = synthesize_system(system)
    print("integrated flow result:")
    print(result.summary())
    print()

    outcomes = compare_methods(system)
    baseline = outcomes["factor+cse"].hardware
    proposed = outcomes["proposed"].hardware
    print(
        f"area: factorization+CSE {baseline.area:.0f} GE -> "
        f"proposed {proposed.area:.0f} GE "
        f"({improvement(baseline.area, proposed.area):.1f}% better)"
    )


if __name__ == "__main__":
    main()
