#!/usr/bin/env python3
"""Quickstart: synthesize the paper's motivating system (Table 14.1).

Run:  python examples/quickstart.py

Shows the complete public-API loop: parse a polynomial system, declare its
bit-vector signature, run the integrated flow, and inspect the resulting
decomposition and its hardware estimate against the baselines.
"""

from repro import (
    BitVectorSignature,
    PolySystem,
    compare_methods,
    improvement,
    parse_system,
    synthesize_system,
)


def main() -> None:
    # The paper's Table 14.1 system: three polynomials secretly sharing
    # the building block (x + 3y).
    polys = parse_system(
        [
            "x^2 + 6*x*y + 9*y^2",   # = (x + 3y)^2
            "4*x*y^2 + 12*y^3",      # = 4y^2 (x + 3y)
            "2*x^2*z + 6*x*y*z",     # = 2xz (x + 3y)
        ]
    )
    system = PolySystem(
        name="quickstart",
        polys=tuple(polys),
        signature=BitVectorSignature.uniform(("x", "y", "z"), 16),
    )

    result = synthesize_system(system)
    print("=== integrated flow (Algorithm 7) ===")
    print(result.summary())
    print()

    print("=== method comparison ===")
    outcomes = compare_methods(system)
    baseline = outcomes["factor+cse"].hardware
    for method in ("direct", "horner", "factor+cse", "proposed"):
        outcome = outcomes[method]
        print(
            f"{method:11s} {outcome.op_count}   "
            f"area {outcome.hardware.area:8.0f} GE   "
            f"delay {outcome.hardware.delay:6.0f} gates"
        )
    proposed = outcomes["proposed"].hardware
    print(
        f"\narea improvement over factorization+CSE: "
        f"{improvement(baseline.area, proposed.area):.1f}%"
    )


if __name__ == "__main__":
    main()
