#!/usr/bin/env python3
"""Equivalence checking of polynomial datapaths over Z_2^m.

Run:  python examples/equivalence_checking.py

Two demonstrations:
1. the synthesized (optimized) implementation of the Table 14.2 system is
   formally equivalent to its specification — decided exactly via
   canonical forms, not simulation;
2. a deliberately buggy implementation is caught, with a concrete
   counterexample input.
"""

from repro import synthesize_system
from repro.baselines import direct_decomposition
from repro.poly import parse_polynomial
from repro.suite import table_14_2_system
from repro.verify import check_decompositions, check_polynomials

def main() -> None:
    system = table_14_2_system()

    # 1. Optimized implementation vs specification.
    optimized = synthesize_system(system).decomposition
    reference = direct_decomposition(list(system.polys))
    report = check_decompositions(optimized, reference, system.signature)
    print(f"optimized vs specification: {report}")

    # 2. Catching a bug: an off-by-one in one coefficient.
    good = system.polys[0]
    buggy = good + 1
    report = check_polynomials(good, buggy, system.signature)
    print(f"buggy implementation:       {report}")

    # 3. Equivalence that simulation-based checking would need luck for:
    #    the polynomials differ as integers but agree mod 2^16 everywhere.
    left = parse_polynomial("x^2", variables=("x", "y"))
    vanishing = parse_polynomial("x^2 - x", variables=("x", "y")).scale(1 << 15)
    right = left + vanishing
    report = check_polynomials(left, right, system.signature)
    print(f"vanishing-difference pair:  {report}")
    print()
    print("left  =", left)
    print("right =", right)
    print("(identical functions over 16-bit inputs despite different polynomials)")


if __name__ == "__main__":
    main()
