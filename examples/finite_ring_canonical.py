#!/usr/bin/env python3
"""Canonical forms over Z_2^m (paper Section 14.3.1).

Run:  python examples/finite_ring_canonical.py

Bit-vector datapaths compute *functions* over finite rings, not abstract
polynomials: distinct polynomials can be the same function (vanishing
polynomials exist), and Chen's canonical form gives each function a unique
falling-factorial representative.  This example reproduces the paper's
F/G pair whose canonical forms expose shared Y_k building blocks, and
demonstrates function equality and vanishing polynomials.
"""

from repro import BitVectorSignature
from repro.poly import parse_polynomial
from repro.rings import (
    functions_equal,
    is_vanishing,
    smarandache_lambda,
    to_canonical,
    vanishing_generators,
)
from repro.suite import section_14_3_1_system


def main() -> None:
    system = section_14_3_1_system()
    F, G = system.polys
    print("the paper's Section 14.3.1 pair over Z_2^16:")
    print(f"  F = {F}")
    print(f"  G = {G}")
    print()
    print("canonical forms (shared Y_k factors exposed):")
    print(f"  F = {to_canonical(F, system.signature)}")
    print(f"  G = {to_canonical(G, system.signature)}")
    print()

    # lambda(2^m): the least factorial divisible by 2^m.
    for m in (3, 8, 16, 32):
        print(f"  lambda(2^{m}) = {smarandache_lambda(m)}")
    print()

    # Vanishing polynomials: non-zero polynomials computing zero.
    tiny = BitVectorSignature((("x", 2), ("y", 2)), 4)
    print("some vanishing polynomials of Z_2^2 x Z_2^2 -> Z_2^4:")
    for generator in list(vanishing_generators(tiny, max_total_degree=4))[:5]:
        assert is_vanishing(generator, tiny)
        print(f"  {generator}")
    print()

    # Function equality despite different polynomials.
    p = parse_polynomial("x^2", variables=("x", "y"))
    q = p + parse_polynomial("8*x^2 - 8*x", variables=("x", "y"))
    print(f"p = {p}")
    print(f"q = {q}")
    print(f"equal as functions over {tiny.variables} -> Z_2^4? ", end="")
    print(functions_equal(p, q, tiny))


if __name__ == "__main__":
    main()
