#!/usr/bin/env python3
"""Polynomial modeling of black-box components (related work [20, 21]).

Run:  python examples/component_modeling.py

Given only the input/output behaviour of a bit-vector block, recover its
exact polynomial model over Z_2^m by finite-difference interpolation in
the falling-factorial basis — then synthesize optimized hardware for it.
The demo models a saturating-free MAC-style block and a "mystery" block
given as a value table.
"""

from repro import BitVectorSignature, PolySystem, synthesize_system
from repro.rings import fit_function, model_polynomial


def main() -> None:
    sig = BitVectorSignature((("a", 4), ("b", 4)), 8)

    # A behavioural block: whoever wrote it, its function is 3a^2 + ab + 7.
    def black_box(a: int, b: int) -> int:
        return (3 * a * a + a * b + 7) & 0xFF

    model = model_polynomial(black_box, sig)
    print(f"recovered model: {model}")
    canonical = fit_function(black_box, sig)
    print(f"canonical form : {canonical}")
    print()

    # Verify exhaustively (4-bit inputs: 256 points).
    mismatches = sum(
        1
        for a in range(16)
        for b in range(16)
        if model.evaluate_mod({"a": a, "b": b}, 256) != black_box(a, b)
    )
    print(f"exhaustive check: {256 - mismatches}/256 points match")
    print()

    # And synthesize hardware for the recovered model.
    system = PolySystem("modeled", (model,), sig)
    result = synthesize_system(system)
    print("synthesized implementation:")
    print(result.summary())


if __name__ == "__main__":
    main()
