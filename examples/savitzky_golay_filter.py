#!/usr/bin/env python3
"""Synthesize a 2-D Savitzky-Golay image filter (Table 14.3, SG rows).

Run:  python examples/savitzky_golay_filter.py [window] [degree]

A 2-D SG smoothing filter evaluates one fitted polynomial per window
position — shifted copies of one bivariate form.  This example builds the
system, shows the sharing the integrated flow finds (the invariant
top-degree form implemented as a product of linear blocks), and prints the
area/delay comparison against the factorization+CSE baseline.
"""

import sys

from repro import compare_methods, improvement
from repro.suite import savitzky_golay_system


def main() -> None:
    window = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    degree = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    system = savitzky_golay_system(window, degree)
    print(f"system: {system}")
    print(f"first polynomial : {system.polys[0]}")
    print(f"last polynomial  : {system.polys[-1]}")
    print()

    outcomes = compare_methods(system)
    baseline = outcomes["factor+cse"]
    proposed = outcomes["proposed"]

    print(f"{'method':12s} {'MULT':>5s} {'ADD':>5s} {'area/GE':>9s} {'delay':>6s}")
    for method in ("direct", "horner", "factor+cse", "proposed"):
        o = outcomes[method]
        print(
            f"{method:12s} {o.op_count.mul:5d} {o.op_count.add:5d} "
            f"{o.hardware.area:9.0f} {o.hardware.delay:6.0f}"
        )
    print()
    print("proposed decomposition blocks:")
    decomposition = proposed.decomposition
    for name in decomposition.live_blocks():
        print(f"  {name} = {decomposition.blocks[name]}")
    print()
    print(
        f"area improvement: "
        f"{improvement(baseline.hardware.area, proposed.hardware.area):.1f}%  "
        f"delay change: "
        f"{improvement(baseline.hardware.delay, proposed.hardware.delay):.1f}%"
    )


if __name__ == "__main__":
    main()
