#!/usr/bin/env python3
"""From polynomial system to synthesizable Verilog.

Run:  python examples/rtl_generation.py

Synthesizes the motivating system with the integrated flow, emits a
combinational Verilog module for the optimized decomposition, and
generates a self-checking testbench whose expected values come from the
polynomial semantics mod 2^m.
"""

from repro import synthesize_system
from repro.rtl import decomposition_to_verilog, testbench_for_system
from repro.suite import table_14_1_system


def main() -> None:
    system = table_14_1_system()
    result = synthesize_system(system)
    print("decomposition:")
    print(result.decomposition.summary())
    print()
    print("=" * 60)
    print(decomposition_to_verilog(result.decomposition, system.signature, "motivating"))
    print("=" * 60)
    print(
        testbench_for_system(
            list(system.polys), system.signature, "motivating", vectors=5
        )
    )


if __name__ == "__main__":
    main()
