#!/usr/bin/env python3
"""Area-delay trade-off exploration (the knob behind Table 14.3).

Run:  python examples/tradeoff_exploration.py [system-name]

The paper buys area with delay; this example makes the trade-off explicit
by sweeping the flow's knobs on one benchmark system: the factorization+
CSE baseline, the integrated flow under the area and op-count objectives,
and the delay-oriented (tree-height-reduced) lowering of the area winner.
"""

import sys

from repro import explore_tradeoffs
from repro.suite import get_system


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "MVCS"
    system = get_system(name)
    print(f"system: {system}")
    print()
    points = explore_tradeoffs(system)
    print(f"{'point':24s} {'area/GE':>9s} {'delay':>7s} {'MULT':>5s} {'ADD':>5s}")
    for point in points:
        print(
            f"{point.label:24s} {point.area:9.0f} {point.delay:7.0f} "
            f"{point.op_count.mul:5d} {point.op_count.add:5d}"
        )
    print()
    best_area = min(points, key=lambda p: p.area)
    best_delay = min(points, key=lambda p: p.delay)
    print(f"best area : {best_area.label} ({best_area.area:.0f} GE)")
    print(f"best delay: {best_delay.label} ({best_delay.delay:.0f} gates)")


if __name__ == "__main__":
    main()
