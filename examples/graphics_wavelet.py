#!/usr/bin/env python3
"""The MVCS graphics kernel: algebraic division at work.

Run:  python examples/graphics_wavelet.py

The degree-3 cosine-wavelet polynomial is a dense 10-term bivariate cubic
as written, but algebraically it is ``2 d^3 + 9 d^2 + 12 d + 4`` for the
linear block ``d = x - y``.  Kernel/co-kernel factoring cannot see this
(Section 14.2.1); the paper's algebraic division can (Section 14.4.3).
"""

from repro import compare_methods, improvement, synthesize_system
from repro.core import BlockRegistry, divide_by_block
from repro.poly import parse_polynomial
from repro.suite import wavelet_system


def main() -> None:
    system = wavelet_system()
    poly = system.polys[0]
    print(f"system: {system}")
    print(f"P = {poly}")
    print()

    # Division by hand: P / (x - y), chained for powers.
    divisor = parse_polynomial("x - y")
    chained = divide_by_block(poly, divisor, "d")
    print(f"P divided by (x - y):  {chained}")
    print()

    result = synthesize_system(system)
    print("integrated flow result:")
    print(result.summary())
    print()

    outcomes = compare_methods(system)
    baseline = outcomes["factor+cse"]
    proposed = outcomes["proposed"]
    print(
        f"{'method':12s} {'MULT':>5s} {'ADD':>5s} {'area/GE':>9s} {'delay':>6s}"
    )
    for method in ("direct", "horner", "factor+cse", "proposed"):
        o = outcomes[method]
        print(
            f"{method:12s} {o.op_count.mul:5d} {o.op_count.add:5d} "
            f"{o.hardware.area:9.0f} {o.hardware.delay:6.0f}"
        )
    print(
        f"\narea improvement over factorization+CSE: "
        f"{improvement(baseline.hardware.area, proposed.hardware.area):.1f}%"
    )


if __name__ == "__main__":
    main()
